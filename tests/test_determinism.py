"""Determinism regression: same seed => byte-identical simulation output.

The credibility of every figure reproduction rests on the simulator
being a deterministic function of its seed (docs/API.md documents the
guarantee).  Two independent, freshly constructed runs with the same
seed must agree bit-for-bit on flow completion times and queue traces;
a different seed must not.
"""

import pickle

import numpy as np

from repro.netsim.flow import Flow
from repro.netsim.fluid import FluidConfig, FluidNetwork
from repro.netsim.network import PacketNetwork
from repro.netsim.topology import TopologyConfig
from repro.traffic.generator import PoissonTrafficGenerator, TrafficConfig
from repro.traffic.workloads import WEB_SEARCH


def _packet_run(seed, duration=0.01, intervals=10):
    """One full packet-level run: returns (fct list, queue trace)."""
    net = PacketNetwork(TopologyConfig(n_spine=2, n_leaf=2, hosts_per_leaf=2),
                        transport="dcqcn", seed=seed)
    rng = np.random.default_rng(seed + 17)
    gen = PoissonTrafficGenerator(net.host_names(), WEB_SEARCH, rng=rng)
    flows = gen.generate(TrafficConfig(load=0.5, duration=duration,
                                       host_rate_bps=10e9))
    net.start_flows(flows)
    trace = []
    for _ in range(intervals):
        net.advance(duration / intervals)
        stats = net.queue_stats()
        trace.append(sorted((name, s.qlen_bytes, s.tx_bytes, s.dropped_pkts)
                            for name, s in stats.items()))
    fcts = sorted((f.flow_id, f.start_time, f.finish_time)
                  for f in net.finished_flows)
    return fcts, trace


def _fluid_run(seed, intervals=20):
    net = FluidNetwork(FluidConfig(n_spine=1, n_leaf=2, hosts_per_leaf=2),
                       seed=seed)
    hosts = net.host_names()
    net.start_flows([Flow(i, hosts[i % 2], hosts[2 + i % 2], 50_000,
                          start_time=i * 1e-4) for i in range(6)])
    trace = []
    for _ in range(intervals):
        net.advance(1e-3)
        stats = net.queue_stats()
        trace.append(sorted((name, s.qlen_bytes, s.tx_bytes)
                            for name, s in stats.items()))
    return trace


class TestPacketLevelDeterminism:
    def test_same_seed_byte_identical(self):
        r1 = _packet_run(seed=123)
        r2 = _packet_run(seed=123)
        assert pickle.dumps(r1) == pickle.dumps(r2)

    def test_fct_lists_exactly_equal(self):
        fcts1, trace1 = _packet_run(seed=7)
        fcts2, trace2 = _packet_run(seed=7)
        assert fcts1, "run produced no finished flows — broaden the scenario"
        assert fcts1 == fcts2          # exact float equality, not approx
        assert trace1 == trace2

    def test_different_seed_differs(self):
        fcts1, _ = _packet_run(seed=7)
        fcts2, _ = _packet_run(seed=8)
        assert fcts1 != fcts2

    def test_default_construction_is_deterministic(self):
        # PacketNetwork defaults to seed=0 (not wall-clock entropy).
        n1 = PacketNetwork(TopologyConfig(n_spine=1, n_leaf=2, hosts_per_leaf=2))
        n2 = PacketNetwork(TopologyConfig(n_spine=1, n_leaf=2, hosts_per_leaf=2))
        for i in range(6):
            f = Flow(i, f"h{i % 2}", f"h{2 + i % 2}", 30_000,
                     start_time=i * 1e-4)
            n1.start_flow(Flow(**f.__dict__))
            n2.start_flow(Flow(**f.__dict__))
        n1.advance(0.01)
        n2.advance(0.01)
        assert sorted((f.flow_id, f.finish_time) for f in n1.finished_flows) \
            == sorted((f.flow_id, f.finish_time) for f in n2.finished_flows)


class TestFluidDeterminism:
    def test_same_seed_byte_identical(self):
        assert pickle.dumps(_fluid_run(3)) == pickle.dumps(_fluid_run(3))


class TestComponentDeterminism:
    """Seeded-fallback regression: components constructed without an rng
    must be deterministic (they used to draw from OS entropy)."""

    def test_default_marker_streams_are_reproducible(self):
        from repro.netsim.ecn import ECNConfig, ECNMarker
        m1 = ECNMarker(ECNConfig(0, 1000, 1.0))
        m2 = ECNMarker(ECNConfig(0, 1000, 1.0))
        d1 = [m1.should_mark(300) for _ in range(200)]
        d2 = [m2.should_mark(300) for _ in range(200)]
        assert d1 == d2

    def test_default_mlp_init_is_reproducible(self):
        from repro.rl.nn import MLP
        w1 = MLP([4, 8, 2]).parameters()
        w2 = MLP([4, 8, 2]).parameters()
        assert w1.keys() == w2.keys()
        assert all(np.array_equal(w1[k], w2[k]) for k in w1)
