"""Tests for the whole-program dataflow analyzer (PET101–PET105).

Each rule gets a synthetic fixture package (positive, negative, and
``# pet: noqa``-suppressed variants) written under ``tmp_path`` with
proper ``__init__.py`` markers so module names resolve as ``repro.*``.
The CLI tests cover exit codes (0 clean, 1 findings, 2 usage/parse
errors), the SARIF document shape, and the baseline round trip.
"""

import json
import subprocess
import sys
import textwrap
from pathlib import Path

from repro.devtools.analyze import (RULES, analyze_paths, build_program,
                                    load_baseline, save_baseline,
                                    split_by_baseline, to_sarif)
from repro.devtools.cli import devtools_main

REPO = Path(__file__).resolve().parent.parent


def _tree(root: Path, files: dict) -> Path:
    """Write a fixture tree; add __init__.py to every package dir."""
    for rel, src in files.items():
        p = root / rel
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(textwrap.dedent(src), encoding="utf-8")
        d = p.parent
        while d != root:
            marker = d / "__init__.py"
            if not marker.exists():
                marker.write_text("", encoding="utf-8")
            d = d.parent
    return root


def _rules(findings):
    return {f.rule for f in findings}


# ---------------------------------------------------------------- PET101

class TestPET101:
    def test_ambient_rng_in_sim_scope_fires(self, tmp_path):
        _tree(tmp_path, {"repro/netsim/sim.py": """
            import numpy as np

            def ambient_step():
                rng = np.random.default_rng()
                return rng.random()

            def seeded_step():
                rng = np.random.default_rng(0)
                return rng.random()
        """})
        found = analyze_paths([str(tmp_path)], select={"PET101"})
        assert len(found) == 1
        assert found[0].rule == "PET101"
        assert found[0].symbol.endswith("ambient_step")

    def test_seeding_derived_rng_is_clean(self, tmp_path):
        _tree(tmp_path, {"repro/netsim/sim.py": """
            from repro.parallel.seeding import derive_rng, fallback_rng

            def step(seed):
                rng = derive_rng(seed, 3)
                backup = fallback_rng(0)
                return rng.random() + backup.random()
        """})
        assert analyze_paths([str(tmp_path)], select={"PET101"}) == []

    def test_interprocedural_ambient_flow(self, tmp_path):
        # Ambient construction happens OUTSIDE sim scope (tools/), so
        # only the dataflow edge into the netsim callee can catch it.
        _tree(tmp_path, {
            "repro/tools/driver.py": """
                import numpy as np
                from repro.netsim.sim import consume

                def drive():
                    rng = np.random.default_rng()
                    return consume(rng)
            """,
            "repro/netsim/sim.py": """
                def consume(rng):
                    return rng.random()
            """,
        })
        found = analyze_paths([str(tmp_path)], select={"PET101"})
        assert len(found) == 1
        assert "consume" in found[0].message
        assert found[0].path.endswith("driver.py")

    def test_noqa_suppresses(self, tmp_path):
        _tree(tmp_path, {"repro/netsim/sim.py": """
            import numpy as np

            def ambient_step():
                rng = np.random.default_rng()  # pet: noqa-PET101
                return rng.random()
        """})
        assert analyze_paths([str(tmp_path)], select={"PET101"}) == []


# ---------------------------------------------------------------- PET102

class TestPET102:
    def test_lambda_and_nested_submissions_fire(self, tmp_path):
        _tree(tmp_path, {"repro/analysis/jobs.py": """
            from repro.parallel.engine import Engine, TaskSpec

            def submit_lambda():
                return TaskSpec(0, lambda: 1, (), {}, 0)

            def submit_nested():
                def inner():
                    return 1
                return TaskSpec(1, inner, (), {}, 0)
        """})
        found = analyze_paths([str(tmp_path)], select={"PET102"})
        msgs = " / ".join(f.message for f in found)
        assert len(found) == 2
        assert "lambda" in msgs and "nested" in msgs

    def test_mutable_global_capture_fires(self, tmp_path):
        _tree(tmp_path, {"repro/analysis/jobs.py": """
            from repro.parallel.engine import TaskSpec

            CACHE = {}

            def work(x):
                CACHE[x] = x
                return x

            def pure(x):
                return x + 1

            def submit():
                return [TaskSpec(0, work, (1,), {}, 0),
                        TaskSpec(1, pure, (2,), {}, 0)]
        """})
        found = analyze_paths([str(tmp_path)], select={"PET102"})
        assert len(found) == 1
        assert "CACHE" in found[0].message
        assert found[0].symbol.endswith("work")

    def test_top_level_callable_is_clean(self, tmp_path):
        _tree(tmp_path, {"repro/analysis/jobs.py": """
            from repro.parallel.engine import TaskSpec

            def work(x):
                return x + 1

            def submit():
                return TaskSpec(0, work, (1,), {}, 0)
        """})
        assert analyze_paths([str(tmp_path)], select={"PET102"}) == []

    def test_shared_memory_arena_cache_is_exempt(self, tmp_path):
        """A process-local attachment cache over named shared-memory
        segments is legal task state: the segment handle rides in the
        TaskSpec args and the dict is per-process plumbing, not shared
        mutable state (the sharded fluid step's zero-copy path)."""
        _tree(tmp_path, {"repro/analysis/jobs.py": """
            from multiprocessing import shared_memory
            from repro.parallel.engine import TaskSpec

            _ARENA_ATTACHMENTS = {}

            def work(name):
                cached = _ARENA_ATTACHMENTS.get(name)
                if cached is None:
                    cached = shared_memory.SharedMemory(name=name)
                    _ARENA_ATTACHMENTS[name] = cached
                return cached.size

            def submit():
                return TaskSpec(0, work, ("seg",), {}, 0)
        """})
        assert analyze_paths([str(tmp_path)], select={"PET102"}) == []

    def test_arena_named_global_without_shared_memory_still_fires(self,
                                                                  tmp_path):
        """The exemption is the *pair* — an arena-named dict in a module
        that never touches multiprocessing stays a finding."""
        _tree(tmp_path, {"repro/analysis/jobs.py": """
            from repro.parallel.engine import TaskSpec

            _ARENA_ATTACHMENTS = {}

            def work(name):
                _ARENA_ATTACHMENTS[name] = 1
                return name

            def submit():
                return TaskSpec(0, work, ("seg",), {}, 0)
        """})
        found = analyze_paths([str(tmp_path)], select={"PET102"})
        assert len(found) == 1
        assert "_ARENA_ATTACHMENTS" in found[0].message


# ---------------------------------------------------------------- PET103

class TestPET103:
    NET = """
        class Net:
            def __init__(self, fastpath=True):
                self.fastpath = bool(fastpath)

            def step(self):
                if self.fastpath:
                    return self._fast()
                return self._ref()

            def _fast(self):
                return 1.0

            def _ref(self):
                return 1.0
    """

    def test_reference_twin_that_only_raises_fires(self, tmp_path):
        _tree(tmp_path, {"repro/netsim/fast.py": """
            class Net:
                def __init__(self, fastpath=True):
                    self.fastpath = bool(fastpath)

                def step(self):
                    if self.fastpath:
                        return 1.0
                    raise RuntimeError("no reference implementation")
        """})
        found = analyze_paths([str(tmp_path)], select={"PET103"})
        assert any("only raises" in f.message for f in found)

    def test_untested_reference_leg_fires(self, tmp_path):
        src = _tree(tmp_path / "src", {"repro/netsim/fast.py": self.NET})
        tests = _tree(tmp_path / "t", {"test_net.py": """
            from repro.netsim.fast import Net

            def test_fast_only():
                assert Net(fastpath=True).step() == 1.0
        """})
        found = analyze_paths([str(src)], tests=[str(tests)],
                              select={"PET103"})
        assert len(found) == 1
        assert "untested" in found[0].message

    def test_covered_reference_leg_is_clean(self, tmp_path):
        src = _tree(tmp_path / "src", {"repro/netsim/fast.py": self.NET})
        tests = _tree(tmp_path / "t", {"test_net.py": """
            from repro.netsim.fast import Net

            def test_twins():
                assert Net(fastpath=True).step() == \\
                    Net(fastpath=False).step()
        """})
        assert analyze_paths([str(src)], tests=[str(tests)],
                             select={"PET103"}) == []


# ---------------------------------------------------------------- PET104

class TestPET104:
    def test_unsorted_iteration_on_export_path_fires(self, tmp_path):
        _tree(tmp_path, {"repro/obs/agg.py": """
            class StatRegistry:
                def __init__(self):
                    self.counters = {}

                def snapshot(self):
                    direct = [(k, v) for k, v in self.counters.items()]
                    return direct + _pack(self.counters)

            def _pack(d):
                return [(k, v) for k, v in d.items()]
        """})
        found = analyze_paths([str(tmp_path)], select={"PET104"})
        assert len(found) == 2
        assert {f.symbol.rsplit(".", 1)[-1] for f in found} == \
            {"snapshot", "_pack"}

    def test_sorted_iteration_is_clean(self, tmp_path):
        _tree(tmp_path, {"repro/obs/agg.py": """
            class StatRegistry:
                def __init__(self):
                    self.counters = {}

                def snapshot(self):
                    flat = [(k, v) for k, v in sorted(self.counters.items())]
                    keys = tuple(sorted(k for k in self.counters.keys()))
                    return flat, keys
        """})
        assert analyze_paths([str(tmp_path)], select={"PET104"}) == []

    def test_unreachable_function_not_flagged(self, tmp_path):
        # Same unsorted iteration, but nothing on a merge/export path.
        _tree(tmp_path, {"repro/obs/agg.py": """
            def unrelated(d):
                return [(k, v) for k, v in d.items()]
        """})
        assert analyze_paths([str(tmp_path)], select={"PET104"}) == []


# ---------------------------------------------------------------- PET105

class TestPET105:
    def test_eager_unguarded_telemetry_fires(self, tmp_path):
        _tree(tmp_path, {"repro/resilience/emit.py": """
            from repro.obs.trace import get_tracer

            def unguarded(kind, detail):
                get_tracer().event(f"ev.{kind}",
                                   data=[repr(v) for v in detail])

            def guarded(kind, detail):
                tracer = get_tracer()
                if tracer:
                    tracer.event(f"ev.{kind}",
                                 data=[repr(v) for v in detail])

            def cheap(kind):
                get_tracer().event("ev", n=len(kind))
        """})
        found = analyze_paths([str(tmp_path)], select={"PET105"})
        assert len(found) == 1
        assert found[0].symbol.endswith("unguarded")


# ------------------------------------------------------------- reporting

class TestReporting:
    def _findings(self, tmp_path):
        _tree(tmp_path, {"repro/netsim/sim.py": """
            import numpy as np

            def ambient_step():
                return np.random.default_rng().random()
        """})
        return analyze_paths([str(tmp_path)], select={"PET101"})

    def test_sarif_document_shape(self, tmp_path):
        doc = to_sarif(self._findings(tmp_path), dict(RULES))
        assert doc["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in doc["$schema"]
        run = doc["runs"][0]
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert set(RULES) <= set(rule_ids)
        res = run["results"][0]
        assert res["ruleId"] == "PET101"
        assert res["locations"][0]["physicalLocation"]["region"]["startLine"]
        assert res["partialFingerprints"]["petFingerprint/v1"]

    def test_baseline_round_trip(self, tmp_path):
        found = self._findings(tmp_path)
        bl_path = tmp_path / "baseline.json"
        assert save_baseline(str(bl_path), found) == len(found) == 1
        baseline = load_baseline(str(bl_path))
        new, suppressed, stale = split_by_baseline(found, baseline)
        assert (new, len(suppressed), stale) == ([], 1, [])
        # A different finding is new; the old entry goes stale.
        other = found[0].__class__(**{**found[0].__dict__,
                                      "message": "something else"})
        new, suppressed, stale = split_by_baseline([other], baseline)
        assert len(new) == 1 and not suppressed and len(stale) == 1

    def test_fingerprint_survives_line_churn(self, tmp_path):
        f = self._findings(tmp_path)[0]
        moved = f.__class__(**{**f.__dict__, "line": f.line + 40})
        assert f.fingerprint() == moved.fingerprint()

    def test_build_program_models_modules(self, tmp_path):
        _tree(tmp_path, {"repro/netsim/sim.py": """
            class Net:
                def step(self):
                    return helper()

            def helper():
                return 1
        """})
        program = build_program([str(tmp_path)])
        assert "repro.netsim.sim.Net.step" in program.functions
        assert "repro.netsim.sim.helper" in program.functions
        reach = program.reachable_from({"repro.netsim.sim.Net.step"})
        assert "repro.netsim.sim.helper" in reach


# ------------------------------------------------------------------ CLI

class TestCLI:
    def _clean_tree(self, tmp_path):
        return _tree(tmp_path, {"repro/netsim/sim.py": """
            def step(x):
                return x + 1
        """})

    def _dirty_tree(self, tmp_path):
        return _tree(tmp_path, {"repro/netsim/sim.py": """
            import numpy as np

            def ambient_step():
                return np.random.default_rng().random()
        """})

    def test_exit_zero_on_clean(self, tmp_path, capsys):
        root = self._clean_tree(tmp_path)
        assert devtools_main(["analyze", str(root), "--no-baseline"]) == 0

    def test_exit_one_on_findings(self, tmp_path, capsys):
        root = self._dirty_tree(tmp_path)
        assert devtools_main(["analyze", str(root), "--no-baseline"]) == 1
        assert "PET101" in capsys.readouterr().out

    def test_exit_two_on_unknown_rule_and_missing_path(self, tmp_path):
        root = self._clean_tree(tmp_path)
        assert devtools_main(["analyze", str(root), "--select",
                              "PET999"]) == 2
        assert devtools_main(["analyze", str(tmp_path / "nope")]) == 2

    def test_exit_two_on_parse_error(self, tmp_path):
        bad = tmp_path / "repro" / "broken.py"
        bad.parent.mkdir(parents=True)
        (bad.parent / "__init__.py").write_text("")
        bad.write_text("def broken(:\n")
        assert devtools_main(["analyze", str(tmp_path),
                              "--no-baseline"]) == 2

    def test_baseline_gate_blocks_only_new(self, tmp_path, capsys):
        root = self._dirty_tree(tmp_path)
        bl = tmp_path / "bl.json"
        assert devtools_main(["analyze", str(root), "--baseline", str(bl),
                              "--write-baseline"]) == 0
        assert devtools_main(["analyze", str(root), "--baseline",
                              str(bl)]) == 0
        (root / "repro" / "netsim" / "more.py").write_text(textwrap.dedent("""
            import numpy as np

            def another_ambient():
                return np.random.default_rng().random()
        """))
        capsys.readouterr()
        assert devtools_main(["analyze", str(root), "--baseline",
                              str(bl)]) == 1
        out = capsys.readouterr().out
        assert "more.py" in out and "sim.py" not in out

    def test_json_and_sarif_formats(self, tmp_path, capsys):
        root = self._dirty_tree(tmp_path)
        assert devtools_main(["analyze", str(root), "--no-baseline",
                              "--format", "json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro.analyze/v1"
        assert doc["count"] == 1
        out_file = tmp_path / "report.sarif"
        assert devtools_main(["analyze", str(root), "--no-baseline",
                              "--format", "sarif", "--out",
                              str(out_file)]) == 1
        capsys.readouterr()
        on_disk = json.loads(out_file.read_text())
        assert on_disk["version"] == "2.1.0"
        assert on_disk["runs"][0]["results"][0]["ruleId"] == "PET101"

    def test_list_rules_both_subcommands(self, capsys):
        assert devtools_main(["analyze", "--list-rules"]) == 0
        assert "PET101" in capsys.readouterr().out
        assert devtools_main(["lint", "--list-rules"]) == 0
        assert "PET001" in capsys.readouterr().out

    def test_lint_shares_front_door_and_formats(self, tmp_path, capsys):
        root = _tree(tmp_path, {"repro/netsim/sim.py": """
            import time

            def step():
                return time.time()
        """})
        assert devtools_main(["lint", str(root), "--format", "json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro.analyze/v1"
        assert doc["findings"][0]["rule"].startswith("PET0")

    def test_module_entry_point_subprocess(self):
        """The real front door: repo tree vs the committed baseline."""
        proc = subprocess.run(
            [sys.executable, "-m", "repro.devtools", "analyze", "src",
             "--baseline", str(REPO / "ANALYZE_BASELINE.json")],
            cwd=str(REPO), capture_output=True, text=True,
            env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"})
        assert proc.returncode == 0, proc.stdout + proc.stderr
