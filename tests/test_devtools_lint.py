"""Coverage for the PET invariant linter (repro.devtools.lint).

One passing and one failing fixture snippet per rule id, noqa escape
hatches, scoping, the CLI entry point, and the acceptance check that
the repo's own ``src/`` tree lints clean.
"""

import os
import subprocess
import sys
import textwrap

import pytest

from repro.devtools.lint import RULES, lint_paths, lint_source

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: path that places a snippet inside the determinism/unit scopes
SCOPED = "src/repro/netsim/fixture.py"
#: path outside every restricted scope
UNSCOPED = "src/repro/analysis/fixture.py"


def rules_found(source, path=SCOPED):
    return {v.rule for v in lint_source(textwrap.dedent(source), path)}


class TestPET001WallClock:
    def test_flags_time_time(self):
        src = """
        import time
        def stamp():
            return time.time()
        """
        assert "PET001" in rules_found(src)

    def test_flags_datetime_now(self):
        src = """
        import datetime
        def stamp():
            return datetime.datetime.now()
        """
        assert "PET001" in rules_found(src)

    def test_passes_virtual_time(self):
        src = """
        def stamp(sim):
            return sim.now
        """
        assert "PET001" not in rules_found(src)

    def test_not_applied_outside_scope(self):
        src = """
        import time
        def stamp():
            return time.time()
        """
        assert "PET001" not in rules_found(src, path=UNSCOPED)


class TestPET002Randomness:
    def test_flags_stdlib_random(self):
        src = """
        import random
        def draw():
            return random.random()
        """
        assert "PET002" in rules_found(src)

    def test_flags_stdlib_from_import(self):
        src = """
        from random import randint
        def draw():
            return randint(0, 10)
        """
        assert "PET002" in rules_found(src)

    def test_flags_numpy_module_level(self):
        src = """
        import numpy as np
        def draw():
            return np.random.random()
        """
        assert "PET002" in rules_found(src)

    def test_flags_unseeded_default_rng(self):
        src = """
        import numpy as np
        def make():
            return np.random.default_rng()
        """
        assert "PET002" in rules_found(src)

    def test_passes_seeded_default_rng(self):
        src = """
        import numpy as np
        def make(seed):
            return np.random.default_rng(seed)
        """
        assert "PET002" not in rules_found(src)

    def test_passes_injected_generator_methods(self):
        src = """
        def draw(rng):
            return rng.random() + rng.integers(10)
        """
        assert "PET002" not in rules_found(src)


class TestPET003TimeEquality:
    def test_flags_now_equality(self):
        src = """
        def same(sim, t):
            return sim.now == t
        """
        assert "PET003" in rules_found(src)

    def test_flags_time_suffix_inequality(self):
        src = """
        def differs(finish_time, start_time):
            return finish_time != start_time
        """
        assert "PET003" in rules_found(src)

    def test_passes_ordering(self):
        src = """
        def later(sim, t):
            return sim.now >= t
        """
        assert "PET003" not in rules_found(src)

    def test_passes_tolerance(self):
        src = """
        def close(finish_time, t, eps):
            return abs(finish_time - t) < eps
        """
        assert "PET003" not in rules_found(src)


class TestPET004UnitSuffixes:
    def test_flags_mixed_addition(self):
        src = """
        def total(qlen_bytes, limit_kb):
            return qlen_bytes + limit_kb
        """
        assert "PET004" in rules_found(src)

    def test_flags_mixed_comparison(self):
        src = """
        def over(qlen_bytes, cap_kb):
            return qlen_bytes > cap_kb
        """
        assert "PET004" in rules_found(src)

    def test_flags_mixed_assignment(self):
        src = """
        def convert(size_kb):
            size_bytes = size_kb
            return size_bytes
        """
        assert "PET004" in rules_found(src)

    def test_passes_same_suffix(self):
        src = """
        def total(qlen_bytes, pkt_bytes):
            return qlen_bytes + pkt_bytes
        """
        assert "PET004" not in rules_found(src)

    def test_passes_multiplicative_conversion(self):
        src = """
        def convert(size_kb):
            size_bytes = size_kb * 1000
            return size_bytes
        """
        assert "PET004" not in rules_found(src)

    def test_scope_is_netsim_and_core_config(self):
        src = """
        def total(qlen_bytes, limit_kb):
            return qlen_bytes + limit_kb
        """
        assert "PET004" in rules_found(src, path="src/repro/core/config.py")
        assert "PET004" not in rules_found(src, path="src/repro/core/reward.py")
        assert "PET004" not in rules_found(src, path=UNSCOPED)


class TestPET005ScheduleDelay:
    def test_flags_negative_literal(self):
        src = """
        def go(sim, fn):
            sim.schedule(-1e-6, fn)
        """
        assert "PET005" in rules_found(src)

    def test_flags_bare_subtraction(self):
        src = """
        def go(sim, fn, t0, t1):
            sim.schedule(t1 - t0, fn)
        """
        assert "PET005" in rules_found(src)

    def test_passes_clamped_subtraction(self):
        src = """
        def go(sim, fn, t0, t1):
            sim.schedule(max(t1 - t0, 0.0), fn)
        """
        assert "PET005" not in rules_found(src)

    def test_passes_products_and_names(self):
        src = """
        def go(sim, fn, pkt_bytes, rate_bps, delay):
            sim.schedule(pkt_bytes * 8.0 / rate_bps, fn)
            sim.schedule(delay, fn)
        """
        assert "PET005" not in rules_found(src)


class TestPET006MutableDefaults:
    def test_flags_list_default(self):
        src = """
        def collect(items=[]):
            return items
        """
        assert "PET006" in rules_found(src)

    def test_flags_dict_call_default(self):
        src = """
        def collect(table=dict()):
            return table
        """
        assert "PET006" in rules_found(src)

    def test_passes_none_default(self):
        src = """
        def collect(items=None):
            return items or []
        """
        assert "PET006" not in rules_found(src)


class TestPET007BuiltinHash:
    def test_flags_bare_hash_call(self):
        src = """
        def pick(flow_id, n):
            return hash((flow_id, 0x9E37)) % n
        """
        assert "PET007" in rules_found(src)

    def test_passes_method_and_hashlib(self):
        src = """
        import hashlib
        def digest(obj, payload):
            return obj.hash(payload), hashlib.sha256(payload)
        """
        assert "PET007" not in rules_found(src)

    def test_passes_explicit_mix(self):
        src = """
        from repro.netsim.routing import ecmp_hash
        def pick(flow_id, n):
            return ecmp_hash(flow_id, n)
        """
        assert "PET007" not in rules_found(src)

    def test_not_applied_outside_scope(self):
        src = """
        def pick(flow_id, n):
            return hash(flow_id) % n
        """
        assert "PET007" not in rules_found(src, path=UNSCOPED)


class TestNoqa:
    def test_bare_noqa_suppresses_all(self):
        src = """
        import time
        def stamp():
            return time.time()  # pet: noqa
        """
        assert rules_found(src) == set()

    def test_rule_specific_noqa(self):
        src = """
        def total(qlen_bytes, limit_kb):
            return qlen_bytes + limit_kb  # pet: noqa-PET004
        """
        assert "PET004" not in rules_found(src)

    def test_noqa_for_other_rule_does_not_suppress(self):
        src = """
        def total(qlen_bytes, limit_kb):
            return qlen_bytes + limit_kb  # pet: noqa-PET001
        """
        assert "PET004" in rules_found(src)


class TestViolationReporting:
    def test_violation_carries_location_and_rule(self):
        src = "import time\n\ndef f():\n    return time.time()\n"
        (v,) = lint_source(src, SCOPED)
        assert v.rule == "PET001"
        assert v.line == 4
        assert SCOPED in v.format() and "PET001" in v.format()

    def test_select_filters_rules(self):
        src = """
        import time
        def f(items=[]):
            return time.time()
        """
        vs = lint_source(textwrap.dedent(src), SCOPED, select=["PET006"])
        assert {v.rule for v in vs} == {"PET006"}

    def test_every_rule_has_fixture_coverage(self):
        # the classes above cover the full catalogue
        assert set(RULES) == {"PET001", "PET002", "PET003", "PET004",
                              "PET005", "PET006", "PET007"}


class TestCLIEntryPoint:
    def _run(self, *args, cwd=REPO_ROOT):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
        return subprocess.run(
            [sys.executable, "-m", "repro.devtools.lint", *args],
            capture_output=True, text=True, cwd=cwd, env=env)

    def test_repo_src_tree_is_clean(self):
        proc = self._run("src")
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_violating_file_fails_with_rule_and_location(self, tmp_path):
        bad = tmp_path / "netsim" / "bad.py"
        bad.parent.mkdir()
        bad.write_text("import time\n\ndef f():\n    return time.time()\n")
        proc = self._run(str(bad))
        assert proc.returncode == 1
        assert "PET001" in proc.stdout
        assert "bad.py:4" in proc.stdout

    def test_list_rules(self):
        proc = self._run("--list-rules")
        assert proc.returncode == 0
        for rule in RULES:
            assert rule in proc.stdout

    def test_unknown_rule_id_is_usage_error(self):
        proc = self._run("--select", "PET999", "src")
        assert proc.returncode == 2

    def test_nonexistent_path_is_usage_error(self):
        # Regression: a typo'd path used to exit 0 silently.
        proc = self._run("no/such/path")
        assert proc.returncode == 2
        assert "no such path" in proc.stderr

    def test_lint_paths_walks_directories(self, tmp_path):
        pkg = tmp_path / "netsim"
        pkg.mkdir()
        (pkg / "ok.py").write_text("def f(sim):\n    return sim.now\n")
        (pkg / "bad.py").write_text("def f(xs=[]):\n    return xs\n")
        vs = lint_paths([str(tmp_path)])
        assert {v.rule for v in vs} == {"PET006"}


@pytest.mark.parametrize("rule", sorted(RULES))
def test_rule_catalogue_has_description(rule):
    assert RULES[rule]
