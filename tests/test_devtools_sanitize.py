"""Coverage for the runtime invariant sanitizer (repro.devtools.sanitize).

The repo conftest enables the global sanitizer for the whole suite, so
these tests exercise both the enabled-by-default wiring and targeted
violation triggers (by corrupting component state under the hood).
"""

import numpy as np
import pytest

from repro.devtools import sanitize
from repro.devtools.sanitize import InvariantViolation, SimSanitizer
from repro.netsim.ecn import ECNConfig, ECNMarker
from repro.netsim.engine import Simulator
from repro.netsim.network import PacketNetwork
from repro.netsim.packet import Packet, PacketKind
from repro.netsim.queueing import ByteQueue
from repro.netsim.switch import SwitchNode
from repro.netsim.topology import TopologyConfig


def _pkt(flow_id=1, size=1000, kind=PacketKind.DATA):
    return Packet(flow_id=flow_id, src="h0", dst="h1", size_bytes=size,
                  kind=kind)


def _small_net(seed=0):
    return PacketNetwork(TopologyConfig(n_spine=1, n_leaf=2, hosts_per_leaf=2),
                         seed=seed)


class TestEnablement:
    def test_conftest_enabled_global_sanitizer(self):
        assert sanitize.is_enabled()
        assert sanitize.active() is not None

    def test_enable_is_idempotent(self):
        first = sanitize.enable()
        assert sanitize.enable() is first

    def test_disable_restores_original_methods(self):
        was = sanitize.active()
        orig_installed = was.installed
        sanitize.disable()
        try:
            assert not sanitize.is_enabled()
            assert "enqueue" not in [
                n for _, n, _ in getattr(was, "_saved", [])] or not was.installed
        finally:
            sanitize.enable()
        assert sanitize.is_enabled()
        assert orig_installed

    def test_env_var_parsing(self, monkeypatch):
        monkeypatch.delenv("PET_SANITIZE", raising=False)
        assert sanitize.enabled_from_env(default=True)
        assert not sanitize.enabled_from_env(default=False)
        for off in ("0", "false", "OFF", "no", ""):
            monkeypatch.setenv("PET_SANITIZE", off)
            assert not sanitize.enabled_from_env(default=True)
        monkeypatch.setenv("PET_SANITIZE", "1")
        assert sanitize.enabled_from_env(default=False)

    def test_petconfig_flag_enables_sanitizer(self):
        from repro.core.config import PETConfig
        from repro.gymenv.env import DCNEnv, EnvConfig
        sanitize.disable()
        try:
            DCNEnv(EnvConfig(pet=PETConfig(sanitize=True)))
            assert sanitize.is_enabled()
        finally:
            sanitize.enable()

    def test_context_manager_standalone(self):
        sanitize.disable()
        try:
            with SimSanitizer() as san:
                assert san.installed
                q = ByteQueue(capacity_bytes=10_000)
                q.enqueue(_pkt(), now=0.0)
                assert san.queue_checks > 0
            assert not san.installed
        finally:
            sanitize.enable()


class TestQueueInvariants:
    def test_clean_queue_traffic_passes(self):
        q = ByteQueue(capacity_bytes=10_000)
        assert q.enqueue(_pkt(1), now=0.0)
        assert q.enqueue(_pkt(2), now=0.1)
        assert q.dequeue(now=0.2) is not None
        assert q.dequeue(now=0.3) is not None

    def test_corrupted_qlen_raises_bounds_violation(self):
        q = ByteQueue(capacity_bytes=10_000)
        q.enqueue(_pkt(1), now=0.0)
        q.qlen_bytes = -5          # simulate a byte-accounting bug
        with pytest.raises(InvariantViolation) as exc:
            q.dequeue(now=0.1)
        assert exc.value.invariant in ("queue-bounds", "packet-conservation")

    def test_conservation_violation_has_context(self):
        q = ByteQueue(capacity_bytes=10_000)
        q.enqueue(_pkt(1), now=0.0)
        q.counters.enqueued_pkts += 3   # counter drift
        with pytest.raises(InvariantViolation) as exc:
            q.enqueue(_pkt(2), now=0.1)
        assert exc.value.invariant == "packet-conservation"
        assert exc.value.context["resident_pkts"] == 2
        assert "packet-conservation" in str(exc.value)

    def test_dropped_packets_do_not_break_conservation(self):
        q = ByteQueue(capacity_bytes=1_500)
        assert q.enqueue(_pkt(1), now=0.0)
        assert not q.enqueue(_pkt(2), now=0.1)      # over capacity -> drop
        assert q.counters.dropped_pkts == 1
        assert q.dequeue(now=0.2) is not None


class TestMarkerInvariants:
    def test_clean_marking_passes(self):
        m = ECNMarker(ECNConfig(1000, 2000, 0.5), rng=np.random.default_rng(0))
        for q in (0, 500, 1500, 2500):
            m.should_mark(q)

    def test_corrupted_pmax_raises(self):
        cfg = ECNConfig(1000, 2000, 0.5)
        object.__setattr__(cfg, "pmax", 1.7)   # bypass dataclass validation
        m = ECNMarker(cfg, rng=np.random.default_rng(0))
        with pytest.raises(InvariantViolation) as exc:
            m.should_mark(1_900)
        assert exc.value.invariant == "red-probability"

    def test_negative_qlen_raises(self):
        m = ECNMarker(ECNConfig(1000, 2000, 0.5), rng=np.random.default_rng(0))
        with pytest.raises(InvariantViolation):
            m.should_mark(-1)


class TestActionInvariants:
    def test_corrupted_threshold_order_raises_on_apply(self):
        net = _small_net()
        cfg = ECNConfig(1000, 2000, 0.5)
        object.__setattr__(cfg, "kmin_bytes", 5000)   # now Kmin > Kmax
        with pytest.raises(InvariantViolation) as exc:
            net.set_ecn(net.topology.switches()[0].name, cfg)
        assert exc.value.invariant == "ecn-thresholds"

    def test_switch_set_ecn_all_checked(self):
        sw = SwitchNode("leaf0")
        cfg = ECNConfig(1000, 2000, 0.5)
        object.__setattr__(cfg, "pmax", -0.2)
        with pytest.raises(InvariantViolation):
            sw.set_ecn_all(cfg)

    def test_valid_action_application_passes(self):
        net = _small_net()
        name = net.topology.switches()[0].name
        net.set_ecn(name, ECNConfig(5_000, 200_000, 0.01))

    def test_kmax_above_ceiling_raises_ecn_bounds(self):
        net = _small_net()
        ceiling = sanitize.ECN_KMAX_CEILING_BYTES
        with pytest.raises(InvariantViolation) as exc:
            net.set_ecn(net.topology.switches()[0].name,
                        ECNConfig(1_000, ceiling + 1, 0.5))
        assert exc.value.invariant == "ecn-bounds"

    def test_non_finite_threshold_raises_ecn_bounds(self):
        net = _small_net()
        cfg = ECNConfig(1_000, 2_000, 0.5)
        object.__setattr__(cfg, "kmax_bytes", float("nan"))
        with pytest.raises(InvariantViolation) as exc:
            net.set_ecn(net.topology.switches()[0].name, cfg)
        assert exc.value.invariant == "ecn-bounds"

    def test_kmax_at_ceiling_passes(self):
        net = _small_net()
        net.set_ecn(net.topology.switches()[0].name,
                    ECNConfig(5_000, sanitize.ECN_KMAX_CEILING_BYTES, 0.01))


class TestEngineInvariants:
    def test_normal_run_checks_every_event(self):
        san = sanitize.active()
        before = san.events_checked
        sim = Simulator()
        hits = []
        for i in range(5):
            sim.schedule(i * 1e-3, hits.append, i)
        sim.run()
        assert hits == [0, 1, 2, 3, 4]
        assert san.events_checked >= before + 5

    def test_backwards_time_detected(self):
        sim = Simulator()
        sim.schedule(1e-3, lambda: None)
        sim._san_last_now = 10.0    # claim we already observed t=10
        with pytest.raises(InvariantViolation) as exc:
            sim.run()
        assert exc.value.invariant == "time-monotonic"


class TestNetworkAudit:
    def test_check_network_on_traffic_run(self):
        from repro.netsim.flow import Flow
        net = _small_net()
        for i in range(8):
            net.start_flow(Flow(flow_id=i, src=f"h{i % 2}", dst=f"h{2 + i % 2}",
                                size_bytes=20_000, start_time=i * 1e-4))
        net.advance(0.02)
        san = sanitize.active()
        san.check_network(net)          # must not raise on a healthy run
        assert san.queue_checks > 0

    def test_report_shape(self):
        rep = sanitize.active().report()
        assert set(rep) == {"events_checked", "queue_checks", "marker_checks",
                            "action_checks", "violations_raised"}


class TestInvariantViolationType:
    def test_is_assertion_error(self):
        assert issubclass(InvariantViolation, AssertionError)

    def test_message_includes_component_time_context(self):
        v = InvariantViolation("queue-bounds", "boom", time=1.5,
                               component="leaf0", context={"qlen_bytes": -1})
        s = str(v)
        assert "[queue-bounds]" in s and "leaf0" in s
        assert "t=1.5" in s and "qlen_bytes" in s
