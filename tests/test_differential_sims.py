"""Differential test: fluid model vs packet model on the same scenario.

The repo carries two simulators of the same physical system — the
packet-level event simulator (:mod:`repro.netsim.network`) and the
fluid approximation (:mod:`repro.netsim.fluid`).  They will never agree
bit-for-bit, but on the same small leaf–spine fan-in scenario they must
agree on the physics:

- the utilization of the congested destination leaf matches within an
  absolute 0.15 (the fluid model's documented fidelity band);
- both rank per-switch average queue occupancy the same way — the
  fan-in destination leaf is the hottest switch in both worlds;
- both move (essentially) all offered bytes.

Deliberately cheap — 1e8 b/s host links keep the packet run to a few
hundred packets, well inside the tier-1 time budget.
"""

import numpy as np
import pytest

from repro.netsim.batchfluid import BatchFluidNetwork
from repro.netsim.flow import Flow
from repro.netsim.fluid import FluidConfig, FluidNetwork
from repro.netsim.network import PacketNetwork
from repro.netsim.topology import TopologyConfig

# Same fabric in both worlds: 1 spine, 2 leaves, 2 hosts per leaf,
# slow links (1e8 b/s) so the packet run stays cheap.
_HOST_BPS = 1e8
_SPINE_BPS = 4e8
_DURATION = 0.05

# Fan-in: h0, h1 (leaf0) and h2 (leaf1) all send to h3 (leaf1) — the
# congestion point is leaf1's downlink to h3.
_FLOW_SIZES = [150_000, 120_000, 90_000]


def _flows():
    return [Flow(i, f"h{i}", "h3", size, start_time=0.0)
            for i, size in enumerate(_FLOW_SIZES)]


def _packet_stats():
    net = PacketNetwork(TopologyConfig(n_spine=1, n_leaf=2, hosts_per_leaf=2,
                                       host_rate_bps=_HOST_BPS,
                                       spine_rate_bps=_SPINE_BPS), seed=0)
    net.start_flows(_flows())
    net.advance(_DURATION)
    return net.queue_stats()


def _fluid_cfg():
    return FluidConfig(n_spine=1, n_leaf=2, hosts_per_leaf=2,
                       host_rate_bps=_HOST_BPS, spine_rate_bps=_SPINE_BPS)


def _fluid_stats(batched=False):
    """Fluid-side stats, either solo or through the (R=1) batch kernel.

    The batched variant runs the same scenario as one replica of a
    :class:`BatchFluidNetwork` — the differential bands must hold
    through either backend (and in fact the two are bit-identical;
    ``tests/test_batchfluid.py``).
    """
    if batched:
        batch = BatchFluidNetwork(_fluid_cfg(), seeds=(0,))
        net = batch.view(0)
        net.start_flows(_flows())
        batch.advance(_DURATION)
        return net.queue_stats()
    net = FluidNetwork(_fluid_cfg(), seed=0)
    net.start_flows(_flows())
    net.advance(_DURATION)
    return net.queue_stats()


@pytest.mark.parametrize("batched", [False, True], ids=["solo", "sim_batch"])
class TestFluidVsPacketDifferential:
    def test_destination_leaf_utilization_within_band(self, batched):
        pkt = _packet_stats()
        fld = _fluid_stats(batched)
        u_pkt = pkt["leaf1"].utilization
        u_fld = fld["leaf1"].utilization
        assert u_pkt > 0 and u_fld > 0, "scenario produced no traffic"
        assert abs(u_pkt - u_fld) <= 0.15, (
            f"leaf1 utilization diverged: packet={u_pkt:.3f} "
            f"fluid={u_fld:.3f}")

    def test_occupancy_ordering_agrees(self, batched):
        """Both simulators must rank the fan-in destination leaf as the
        hottest switch by time-averaged queue occupancy."""
        pkt = _packet_stats()
        fld = _fluid_stats(batched)
        assert set(pkt) == set(fld)          # same switch names
        hottest_pkt = max(pkt, key=lambda n: pkt[n].avg_qlen_bytes)
        hottest_fld = max(fld, key=lambda n: fld[n].avg_qlen_bytes)
        assert hottest_pkt == hottest_fld == "leaf1"
        # and the full ordering of the two leaves agrees
        assert (pkt["leaf0"].avg_qlen_bytes <= pkt["leaf1"].avg_qlen_bytes)
        assert (fld["leaf0"].avg_qlen_bytes <= fld["leaf1"].avg_qlen_bytes)

    def test_both_models_deliver_the_offered_bytes(self, batched):
        offered = sum(_FLOW_SIZES)
        for stats in (_packet_stats(), _fluid_stats(batched)):
            delivered = stats["leaf1"].tx_bytes
            # leaf1 egresses every fan-in byte (plus protocol overhead in
            # the packet world) — within 25% of the offered volume.
            assert delivered >= 0.75 * offered
            assert delivered <= 2.0 * offered


def test_batched_backend_is_bit_identical_to_solo():
    """The two fluid backends are not merely within-band of each other —
    the differential scenario itself is bit-identical through the batch
    kernel, so the packet-vs-fluid bands above are one comparison, not
    two."""
    from repro.parallel.perfbench import _fingerprint

    assert _fingerprint(_fluid_stats(False)) == _fingerprint(_fluid_stats(True))
