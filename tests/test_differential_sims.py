"""Differential test: fluid model vs packet model on the same scenario.

The repo carries two simulators of the same physical system — the
packet-level event simulator (:mod:`repro.netsim.network`) and the
fluid approximation (:mod:`repro.netsim.fluid`).  They will never agree
bit-for-bit, but on the same small leaf–spine fan-in scenario they must
agree on the physics:

- the utilization of the congested destination leaf matches within an
  absolute 0.15 (the fluid model's documented fidelity band);
- both rank per-switch average queue occupancy the same way — the
  fan-in destination leaf is the hottest switch in both worlds;
- both move (essentially) all offered bytes.

Deliberately cheap — 1e8 b/s host links keep the packet run to a few
hundred packets, well inside the tier-1 time budget.
"""

import numpy as np
import pytest

from repro.netsim.batchfluid import BatchFluidNetwork
from repro.netsim.flow import Flow
from repro.netsim.fluid import FluidConfig, FluidNetwork
from repro.netsim.network import PacketNetwork
from repro.netsim.topology import TopologyConfig

# Same fabric in both worlds: 1 spine, 2 leaves, 2 hosts per leaf,
# slow links (1e8 b/s) so the packet run stays cheap.
_HOST_BPS = 1e8
_SPINE_BPS = 4e8
_DURATION = 0.05

# Fan-in: h0, h1 (leaf0) and h2 (leaf1) all send to h3 (leaf1) — the
# congestion point is leaf1's downlink to h3.
_FLOW_SIZES = [150_000, 120_000, 90_000]


def _flows():
    return [Flow(i, f"h{i}", "h3", size, start_time=0.0)
            for i, size in enumerate(_FLOW_SIZES)]


def _packet_stats():
    net = PacketNetwork(TopologyConfig(n_spine=1, n_leaf=2, hosts_per_leaf=2,
                                       host_rate_bps=_HOST_BPS,
                                       spine_rate_bps=_SPINE_BPS), seed=0)
    net.start_flows(_flows())
    net.advance(_DURATION)
    return net.queue_stats()


def _fluid_cfg():
    return FluidConfig(n_spine=1, n_leaf=2, hosts_per_leaf=2,
                       host_rate_bps=_HOST_BPS, spine_rate_bps=_SPINE_BPS)


def _fluid_stats(batched=False):
    """Fluid-side stats, either solo or through the (R=1) batch kernel.

    The batched variant runs the same scenario as one replica of a
    :class:`BatchFluidNetwork` — the differential bands must hold
    through either backend (and in fact the two are bit-identical;
    ``tests/test_batchfluid.py``).
    """
    if batched:
        batch = BatchFluidNetwork(_fluid_cfg(), seeds=(0,))
        net = batch.view(0)
        net.start_flows(_flows())
        batch.advance(_DURATION)
        return net.queue_stats()
    net = FluidNetwork(_fluid_cfg(), seed=0)
    net.start_flows(_flows())
    net.advance(_DURATION)
    return net.queue_stats()


@pytest.mark.parametrize("batched", [False, True], ids=["solo", "sim_batch"])
class TestFluidVsPacketDifferential:
    def test_destination_leaf_utilization_within_band(self, batched):
        pkt = _packet_stats()
        fld = _fluid_stats(batched)
        u_pkt = pkt["leaf1"].utilization
        u_fld = fld["leaf1"].utilization
        assert u_pkt > 0 and u_fld > 0, "scenario produced no traffic"
        assert abs(u_pkt - u_fld) <= 0.15, (
            f"leaf1 utilization diverged: packet={u_pkt:.3f} "
            f"fluid={u_fld:.3f}")

    def test_occupancy_ordering_agrees(self, batched):
        """Both simulators must rank the fan-in destination leaf as the
        hottest switch by time-averaged queue occupancy."""
        pkt = _packet_stats()
        fld = _fluid_stats(batched)
        assert set(pkt) == set(fld)          # same switch names
        hottest_pkt = max(pkt, key=lambda n: pkt[n].avg_qlen_bytes)
        hottest_fld = max(fld, key=lambda n: fld[n].avg_qlen_bytes)
        assert hottest_pkt == hottest_fld == "leaf1"
        # and the full ordering of the two leaves agrees
        assert (pkt["leaf0"].avg_qlen_bytes <= pkt["leaf1"].avg_qlen_bytes)
        assert (fld["leaf0"].avg_qlen_bytes <= fld["leaf1"].avg_qlen_bytes)

    def test_both_models_deliver_the_offered_bytes(self, batched):
        offered = sum(_FLOW_SIZES)
        for stats in (_packet_stats(), _fluid_stats(batched)):
            delivered = stats["leaf1"].tx_bytes
            # leaf1 egresses every fan-in byte (plus protocol overhead in
            # the packet world) — within 25% of the offered volume.
            assert delivered >= 0.75 * offered
            assert delivered <= 2.0 * offered


def test_batched_backend_is_bit_identical_to_solo():
    """The two fluid backends are not merely within-band of each other —
    the differential scenario itself is bit-identical through the batch
    kernel, so the packet-vs-fluid bands above are one comparison, not
    two."""
    from repro.parallel.perfbench import _fingerprint

    assert _fingerprint(_fluid_stats(False)) == _fingerprint(_fluid_stats(True))


# --------------------------------------------------------------- fat-tree
#
# The same physics bands on the multi-pod fabric: the packet simulator on
# a FatTreeConfig vs the spatially-sharded fluid model.  Fan-in converges
# on h7 (pod1.edge1): two inter-pod senders and one intra-edge one, so
# the congestion point is pod1.edge1's downlink to h7.

_FT_FLOW_SPECS = [("h0", 150_000), ("h4", 120_000), ("h6", 90_000)]


def _ft_cfg():
    from repro.netsim.fattree import FatTreeConfig
    return FatTreeConfig(n_pods=2, edge_per_pod=2, agg_per_pod=2,
                         core_per_agg=1, hosts_per_edge=2,
                         host_rate_bps=_HOST_BPS, agg_rate_bps=_SPINE_BPS,
                         core_rate_bps=_SPINE_BPS)


def _ft_flows():
    return [Flow(i, src, "h7", size, start_time=0.0)
            for i, (src, size) in enumerate(_FT_FLOW_SPECS)]


def _ft_packet_stats():
    net = PacketNetwork(_ft_cfg(), seed=0)
    net.start_flows(_ft_flows())
    net.advance(_DURATION)
    return net.queue_stats()


def _ft_fluid_stats(shards=1):
    from repro.netsim.shard import ShardedFluidNetwork
    net = ShardedFluidNetwork(_ft_cfg(), shards=shards, seed=0)
    net.start_flows(_ft_flows())
    net.advance(_DURATION)
    return net.queue_stats()


@pytest.mark.parametrize("shards", [1, 2], ids=["shards1", "shards2"])
class TestFatTreeDifferential:
    def test_destination_edge_utilization_within_band(self, shards):
        pkt = _ft_packet_stats()
        fld = _ft_fluid_stats(shards)
        u_pkt = pkt["pod1.edge1"].utilization
        u_fld = fld["pod1.edge1"].utilization
        assert u_pkt > 0 and u_fld > 0, "scenario produced no traffic"
        assert abs(u_pkt - u_fld) <= 0.15, (
            f"pod1.edge1 utilization diverged: packet={u_pkt:.3f} "
            f"fluid={u_fld:.3f}")

    def test_occupancy_ordering_agrees(self, shards):
        pkt = _ft_packet_stats()
        fld = _ft_fluid_stats(shards)
        assert set(pkt) == set(fld)          # same switch names
        hottest_pkt = max(pkt, key=lambda n: pkt[n].avg_qlen_bytes)
        hottest_fld = max(fld, key=lambda n: fld[n].avg_qlen_bytes)
        assert hottest_pkt == hottest_fld == "pod1.edge1"

    def test_both_models_deliver_the_offered_bytes(self, shards):
        offered = sum(size for _, size in _FT_FLOW_SPECS)
        for stats in (_ft_packet_stats(), _ft_fluid_stats(shards)):
            delivered = stats["pod1.edge1"].tx_bytes
            assert delivered >= 0.75 * offered
            assert delivered <= 2.0 * offered


def test_sharded_backend_is_bit_identical_across_shard_counts():
    """On the differential scenario itself, the shard count never changes
    a bit — the packet-vs-fluid bands above are one comparison."""
    from repro.parallel.perfbench import _fingerprint

    fps = {_fingerprint(_ft_fluid_stats(s)) for s in (1, 2, 3)}
    assert len(fps) == 1
