"""Tests for the dynamic (rule-based) ECN baselines AMT and QAECN."""

import numpy as np
import pytest

from repro.analysis.experiments import build_scheme
from repro.baselines.dynamic_ecn import (AMTConfig, AMTController,
                                         QAECNConfig, QAECNController)
from repro.core.training import run_control_loop
from repro.netsim.ecn import ECNConfig
from repro.netsim.flow import Flow
from repro.netsim.fluid import FluidConfig, FluidNetwork
from repro.netsim.network import QueueStats


def mk_stats(switch="leaf0", qlen=0, tx_bytes=0, capacity=1e9, n_queues=1):
    return QueueStats(switch=switch, interval=1e-3, qlen_bytes=qlen,
                      max_port_qlen_bytes=qlen, avg_qlen_bytes=qlen,
                      tx_bytes=tx_bytes, tx_marked_bytes=0, dropped_pkts=0,
                      capacity_bps=capacity, ecn=None, n_queues=n_queues)


class DummyNetwork:
    def __init__(self):
        self.applied = {}

    def set_ecn(self, switch, config):
        self.applied[switch] = config


class TestAMT:
    def test_increases_threshold_when_underutilized(self):
        amt = AMTController(AMTConfig(initial_kmax=100_000,
                                      increase_step=10_000))
        net = DummyNetwork()
        # utilization 0 -> raise
        cfg1 = amt.decide({"leaf0": mk_stats(tx_bytes=0)}, 0.0, net)["leaf0"]
        assert cfg1.kmax_bytes == 110_000
        cfg2 = amt.decide({"leaf0": mk_stats(tx_bytes=0)}, 1.0, net)["leaf0"]
        assert cfg2.kmax_bytes == 120_000

    def test_decreases_threshold_at_target(self):
        amt = AMTController(AMTConfig(initial_kmax=100_000,
                                      target_utilization=0.5,
                                      decrease_factor=0.8))
        net = DummyNetwork()
        # tx 125000 bytes in 1ms over 1 Gbps = 100% utilization
        cfg = amt.decide({"leaf0": mk_stats(tx_bytes=125_000)}, 0.0,
                         net)["leaf0"]
        assert cfg.kmax_bytes == 80_000

    def test_bounds_respected(self):
        amt = AMTController(AMTConfig(initial_kmax=30_000,
                                      kmax_min_bytes=20_000,
                                      kmax_max_bytes=50_000,
                                      increase_step=100_000))
        net = DummyNetwork()
        cfg = amt.decide({"leaf0": mk_stats()}, 0.0, net)["leaf0"]
        assert cfg.kmax_bytes == 50_000
        for _ in range(20):
            cfg = amt.decide({"leaf0": mk_stats(tx_bytes=10**9)}, 0.0,
                             net)["leaf0"]
        assert cfg.kmax_bytes == 20_000

    def test_per_switch_state_independent(self):
        amt = AMTController(AMTConfig(initial_kmax=100_000,
                                      increase_step=10_000,
                                      target_utilization=0.5))
        net = DummyNetwork()
        out = amt.decide({"leaf0": mk_stats(switch="leaf0", tx_bytes=0),
                          "leaf1": mk_stats(switch="leaf1",
                                            tx_bytes=125_000)}, 0.0, net)
        assert out["leaf0"].kmax_bytes > out["leaf1"].kmax_bytes

    def test_validation(self):
        with pytest.raises(ValueError):
            AMTController(AMTConfig(target_utilization=0.0))
        with pytest.raises(ValueError):
            AMTController(AMTConfig(kmax_min_bytes=100, kmax_max_bytes=100))


class TestQAECN:
    def test_threshold_tracks_queue_ewma(self):
        q = QAECNController(QAECNConfig(gain=0.5, initial_kmax=100_000))
        net = DummyNetwork()
        cfg = q.decide({"leaf0": mk_stats(qlen=400_000)}, 0.0, net)["leaf0"]
        # ewma = 0.5*100k + 0.5*400k = 250k
        assert cfg.kmax_bytes == 250_000

    def test_idle_queue_shrinks_threshold(self):
        q = QAECNController(QAECNConfig(gain=0.5, initial_kmax=400_000,
                                        kmax_min_bytes=20_000))
        net = DummyNetwork()
        for _ in range(20):
            cfg = q.decide({"leaf0": mk_stats(qlen=0)}, 0.0, net)["leaf0"]
        assert cfg.kmax_bytes == 20_000

    def test_per_queue_normalization(self):
        q = QAECNController(QAECNConfig(gain=1.0))
        net = DummyNetwork()
        cfg = q.decide({"leaf0": mk_stats(qlen=800_000, n_queues=8)}, 0.0,
                       net)["leaf0"]
        # tracks 800k/8 = 100k per queue
        assert cfg.kmax_bytes == 100_000

    def test_validation(self):
        with pytest.raises(ValueError):
            QAECNController(QAECNConfig(gain=0.0))


class TestOnSimulator:
    def _net(self, seed=0):
        net = FluidNetwork(FluidConfig(n_spine=1, n_leaf=2, hosts_per_leaf=2,
                                       host_rate_bps=10e9,
                                       spine_rate_bps=40e9), seed=seed)
        rng = np.random.default_rng(seed)
        for i in range(30):
            s, d = rng.choice(4, 2, replace=False)
            net.start_flow(Flow(i, f"h{s}", f"h{d}",
                                int(rng.integers(100_000, 5_000_000)),
                                start_time=float(rng.uniform(0, 0.02))))
        return net

    @pytest.mark.parametrize("scheme", ["amt", "qaecn"])
    def test_runs_through_control_loop(self, scheme):
        net = self._net()
        ctrl = build_scheme(scheme, net.switch_names())
        result = run_control_loop(net, ctrl, intervals=30, delta_t=1e-3)
        assert result.intervals == 30
        # thresholds were actually installed on the simulator
        cfgs = {net._ecn_by_switch[net._switch_id(s)]
                for s in net.switch_names()}
        assert all(isinstance(c, ECNConfig) for c in cfgs)

    def test_qaecn_adapts_to_congestion(self):
        """Under sustained congestion QAECN's threshold moves up from its
        floor; when idle it falls back."""
        net = self._net(seed=1)
        ctrl = QAECNController(QAECNConfig(gain=0.5))
        run_control_loop(net, ctrl, intervals=10, delta_t=1e-3)
        busy_kmax = max(v for v in ctrl._ewma.values())
        run_control_loop(net, ctrl, intervals=200, delta_t=1e-3)  # drains
        idle_kmax = max(v for v in ctrl._ewma.values())
        assert idle_kmax <= busy_kmax
