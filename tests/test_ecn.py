"""Tests for RED/ECN marking."""

import numpy as np
import pytest

from repro.netsim.ecn import ECNConfig, ECNMarker, SECN1, SECN2


class TestECNConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ECNConfig(kmin_bytes=-1, kmax_bytes=100, pmax=0.5)
        with pytest.raises(ValueError):
            ECNConfig(kmin_bytes=200, kmax_bytes=100, pmax=0.5)
        with pytest.raises(ValueError):
            ECNConfig(kmin_bytes=0, kmax_bytes=100, pmax=1.5)
        with pytest.raises(ValueError):
            ECNConfig(kmin_bytes=0, kmax_bytes=0, pmax=0.5)

    def test_marking_probability_regions(self):
        c = ECNConfig(kmin_bytes=100, kmax_bytes=300, pmax=0.5)
        assert c.marking_probability(50) == 0.0
        assert c.marking_probability(100) == 0.0
        assert c.marking_probability(200) == pytest.approx(0.25)
        assert c.marking_probability(300) == 1.0
        assert c.marking_probability(1_000_000) == 1.0

    def test_marking_probability_linear_ramp(self):
        c = ECNConfig(kmin_bytes=0, kmax_bytes=1000, pmax=1.0)
        for q in (0, 250, 500, 750):
            assert c.marking_probability(q) == pytest.approx(q / 1000)

    def test_published_static_configs(self):
        assert SECN1.kmin_bytes == 5_000 and SECN1.kmax_bytes == 200_000
        assert SECN2.kmin_bytes == 100_000 and SECN2.kmax_bytes == 400_000


class TestECNMarker:
    def test_never_marks_below_kmin(self):
        m = ECNMarker(ECNConfig(1000, 2000, 1.0), rng=np.random.default_rng(0))
        assert not any(m.should_mark(500) for _ in range(200))

    def test_always_marks_at_kmax(self):
        m = ECNMarker(ECNConfig(1000, 2000, 0.3), rng=np.random.default_rng(0))
        assert all(m.should_mark(5000) for _ in range(50))

    def test_intermediate_marking_rate_matches_probability(self):
        cfg = ECNConfig(0, 1000, 1.0)
        m = ECNMarker(cfg, rng=np.random.default_rng(42))
        n = 20_000
        marks = sum(m.should_mark(300) for _ in range(n))
        assert marks / n == pytest.approx(0.3, abs=0.02)

    def test_counters_and_fraction(self):
        m = ECNMarker(ECNConfig(0, 100, 1.0), rng=np.random.default_rng(0))
        assert m.mark_fraction() == 0.0
        m.should_mark(1_000)   # always marks
        m.should_mark(0)       # never marks (qlen <= kmin=0 -> p=0)
        assert m.decisions == 2
        assert m.marks == 1
        assert m.mark_fraction() == pytest.approx(0.5)

    def test_reconfigure(self):
        m = ECNMarker(ECNConfig(1000, 2000, 1.0), rng=np.random.default_rng(0))
        assert not m.should_mark(500)
        m.set_config(ECNConfig(100, 200, 1.0))
        assert m.should_mark(500)
