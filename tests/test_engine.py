"""Tests for the discrete-event engine."""

import pytest

from repro.netsim.engine import Simulator


def test_initial_state():
    sim = Simulator()
    assert sim.now == 0.0
    assert sim.pending() == 0
    assert sim.peek_time() is None


def test_schedule_and_run_order():
    sim = Simulator()
    order = []
    sim.schedule(2.0, order.append, "b")
    sim.schedule(1.0, order.append, "a")
    sim.schedule(3.0, order.append, "c")
    n = sim.run()
    assert n == 3
    assert order == ["a", "b", "c"]
    assert sim.now == 3.0


def test_same_time_fifo_tiebreak():
    sim = Simulator()
    order = []
    for tag in ("first", "second", "third"):
        sim.schedule(1.0, order.append, tag)
    sim.run()
    assert order == ["first", "second", "third"]


def test_run_until_horizon_stops_and_advances_clock():
    sim = Simulator()
    hits = []
    sim.schedule(1.0, hits.append, 1)
    sim.schedule(5.0, hits.append, 5)
    sim.run(until=2.0)
    assert hits == [1]
    assert sim.now == 2.0       # clock advanced to the horizon
    sim.run(until=10.0)
    assert hits == [1, 5]


def test_run_until_with_empty_heap_advances_clock():
    sim = Simulator()
    sim.run(until=4.0)
    assert sim.now == 4.0


def test_cancel_event():
    sim = Simulator()
    hits = []
    ev = sim.schedule(1.0, hits.append, "x")
    ev.cancel()
    sim.run()
    assert hits == []
    assert ev.cancelled


def test_cancelled_event_drops_references():
    sim = Simulator()
    payload = object()
    ev = sim.schedule(1.0, lambda p: None, payload)
    ev.cancel()
    assert ev.args == ()


def test_schedule_in_past_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-1.0, lambda: None)
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.schedule_at(0.5, lambda: None)


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    hits = []

    def chain(n):
        hits.append(n)
        if n < 3:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(1.0, chain, 1)
    sim.run()
    assert hits == [1, 2, 3]
    assert sim.now == 3.0


def test_max_events_cap():
    sim = Simulator()
    for i in range(10):
        sim.schedule(float(i + 1), lambda: None)
    n = sim.run(max_events=4)
    assert n == 4
    assert sim.pending() == 6


def test_peek_time_skips_cancelled():
    sim = Simulator()
    ev = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    ev.cancel()
    assert sim.peek_time() == 2.0


def test_events_processed_counter():
    sim = Simulator()
    for i in range(5):
        sim.schedule(float(i + 1), lambda: None)
    sim.run()
    assert sim.events_processed == 5
