"""Smoke tests: every example imports cleanly and exposes main().

Running the examples end-to-end takes minutes (they train agents); CI
verifies their imports, argument-free entry points, and that the
quickstart's scenario construction is valid — the full runs are
documented in the README.
"""

import importlib.util
import os
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")
EXAMPLES = ["quickstart", "incast_deep_dive", "packet_level_demo",
            "gym_training", "pattern_switching", "multiqueue_tuning"]


def _load(name):
    path = os.path.join(EXAMPLES_DIR, f"{name}.py")
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_imports_and_has_main(name):
    module = _load(name)
    assert callable(getattr(module, "main", None)), \
        f"example {name} must define main()"


def test_all_examples_present_on_disk():
    files = {f for f in os.listdir(EXAMPLES_DIR) if f.endswith(".py")}
    assert files == {f"{n}.py" for n in EXAMPLES}


def test_quickstart_scenario_is_valid():
    module = _load("quickstart")
    # the example's scenario must construct without touching the network
    import inspect
    src = inspect.getsource(module.main)
    assert "ScenarioConfig" in src and "run_scenario" in src
