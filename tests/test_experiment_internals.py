"""Tests for experiment-harness internals: cache keys, defaults, drains."""

from dataclasses import replace

import pytest

from repro.analysis.experiments import (ScenarioConfig, _default_pet_config,
                                        _pretrain_key)
from repro.core.config import PETConfig
from repro.netsim.fluid import FluidConfig


def cfg(**kw):
    kw.setdefault("fluid", FluidConfig(n_spine=1, n_leaf=2, hosts_per_leaf=2,
                                       host_rate_bps=10e9,
                                       spine_rate_bps=40e9))
    return ScenarioConfig(**kw)


class TestPretrainKey:
    def test_same_scenario_same_key(self):
        pet = PETConfig(seed=0)
        assert _pretrain_key("pet", cfg(), pet) == \
            _pretrain_key("pet", cfg(), pet)

    @pytest.mark.parametrize("field,value", [
        ("load", 0.31), ("workload", "datamining"),
        ("pretrain_intervals", 99), ("seed", 5)])
    def test_scenario_fields_change_key(self, field, value):
        pet = PETConfig(seed=0)
        assert _pretrain_key("pet", cfg(), pet) != \
            _pretrain_key("pet", cfg(**{field: value}), pet)

    def test_scheme_changes_key(self):
        pet = PETConfig(seed=0)
        assert _pretrain_key("pet", cfg(), pet) != \
            _pretrain_key("pet_ablated", cfg(), pet)

    @pytest.mark.parametrize("field,value", [
        ("beta1", 0.7), ("use_incast", False), ("use_flow_ratio", False),
        ("action_mode", "full"), ("history_k", 2)])
    def test_learning_fields_change_key(self, field, value):
        base = PETConfig(seed=0)
        changed = replace(base, **{field: value} if field != "beta1"
                          else {"beta1": 0.7, "beta2": 0.3})
        assert _pretrain_key("pet", cfg(), base) != \
            _pretrain_key("pet", cfg(), changed)

    def test_fabric_changes_key(self):
        pet = PETConfig(seed=0)
        other = cfg(fluid=FluidConfig(n_spine=2, n_leaf=2, hosts_per_leaf=2,
                                      host_rate_bps=10e9,
                                      spine_rate_bps=40e9))
        assert _pretrain_key("pet", cfg(), pet) != \
            _pretrain_key("pet", other, pet)


class TestDefaultPetConfig:
    def test_websearch_weights(self):
        c = _default_pet_config(cfg(workload="websearch"))
        assert (c.beta1, c.beta2) == (0.3, 0.7)

    def test_datamining_weights(self):
        c = _default_pet_config(cfg(workload="datamining"))
        assert (c.beta1, c.beta2) == (0.7, 0.3)

    def test_inherits_scenario_delta_t_and_seed(self):
        c = _default_pet_config(cfg(delta_t=2e-3, seed=42))
        assert c.delta_t == 2e-3
        assert c.seed == 42

    def test_uses_fast_profile(self):
        c = _default_pet_config(cfg())
        assert c.actor_lr == pytest.approx(3e-3)
        assert c.update_interval == 100


class TestReportFormatting:
    def test_fmt_zero_and_small(self):
        from repro.analysis.report import _fmt
        assert _fmt(0.0) == "0"
        assert "e" in _fmt(1e-7)
        assert _fmt("abc") == "abc"
        assert _fmt(12) == "12"

    def test_format_table_empty_rows(self):
        from repro.analysis.report import format_table
        text = format_table(["a", "b"], [])
        assert "a" in text and len(text.splitlines()) == 2
