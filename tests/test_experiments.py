"""Tests for the scenario harness that drives the benchmark suite."""

import numpy as np
import pytest

from repro.analysis.experiments import (SCHEMES, ExperimentResult,
                                        ScenarioConfig, build_scheme,
                                        run_scenario)
from repro.baselines.acc import ACCController
from repro.baselines.static_ecn import StaticECNController
from repro.core.config import PETConfig
from repro.core.pet import PETController
from repro.netsim.fluid import FluidConfig


def tiny_scenario(**kw):
    kw.setdefault("duration", 0.02)
    kw.setdefault("pretrain_intervals", 8)
    kw.setdefault("load", 0.4)
    kw.setdefault("fluid", FluidConfig(n_spine=1, n_leaf=2, hosts_per_leaf=4,
                                       host_rate_bps=10e9,
                                       spine_rate_bps=40e9))
    kw.setdefault("seed", 0)
    return ScenarioConfig(**kw)


class TestBuildScheme:
    def test_all_names_buildable(self):
        for name in SCHEMES:
            ctrl = build_scheme(name, ["leaf0", "spine0"], seed=0)
            assert hasattr(ctrl, "decide")

    def test_types(self):
        assert isinstance(build_scheme("pet", ["s"]), PETController)
        assert isinstance(build_scheme("acc", ["s"]), ACCController)
        assert isinstance(build_scheme("secn1", ["s"]), StaticECNController)

    def test_ablated_pet_masks_features(self):
        ctrl = build_scheme("pet_ablated", ["s"], seed=0)
        assert not ctrl.config.use_incast
        assert not ctrl.config.use_flow_ratio

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            build_scheme("qlearning", ["s"])


class TestScenarioConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ScenarioConfig(simulator="ns3")
        with pytest.raises(KeyError):
            ScenarioConfig(workload="hadoop")

    def test_host_rate_follows_simulator(self):
        cfg = ScenarioConfig(simulator="fluid")
        assert cfg.host_rate_bps == cfg.fluid.host_rate_bps


class TestRunScenario:
    @pytest.mark.parametrize("scheme", ["secn1", "secn2"])
    def test_static_schemes(self, scheme):
        r = run_scenario(scheme, tiny_scenario())
        assert isinstance(r, ExperimentResult)
        assert r.flows_finished > 0
        assert r.fct["overall"].avg >= 1.0    # slowdown can't beat ideal
        assert 0 <= r.mean_utilization <= 1
        assert r.queue.samples > 0

    def test_pet_runs_with_pretraining(self):
        r = run_scenario("pet", tiny_scenario())
        assert r.scheme == "pet"
        assert r.flows_finished > 0
        assert np.isfinite(r.fct["overall"].avg)

    def test_acc_reports_overhead(self):
        r = run_scenario("acc", tiny_scenario())
        assert r.extra["bytes_exchanged_total"] > 0
        assert r.extra["replay_entries"] > 0

    def test_summary_row_fields(self):
        r = run_scenario("secn1", tiny_scenario())
        row = r.summary_row()
        for key in ("overall_avg_fct", "mice_avg_fct", "mice_p99_fct",
                    "elephant_avg_fct", "queue_mean_kb", "utilization"):
            assert key in row

    def test_seed_reproducibility(self):
        a = run_scenario("secn1", tiny_scenario(seed=3))
        b = run_scenario("secn1", tiny_scenario(seed=3))
        assert a.fct["overall"].avg == pytest.approx(b.fct["overall"].avg)
        assert a.flows_total == b.flows_total

    def test_different_seeds_differ(self):
        a = run_scenario("secn1", tiny_scenario(seed=3))
        b = run_scenario("secn1", tiny_scenario(seed=4))
        assert a.flows_total != b.flows_total or \
            a.fct["overall"].avg != b.fct["overall"].avg

    def test_on_interval_callback_invoked(self):
        hits = []
        run_scenario("secn1", tiny_scenario(),
                     on_interval=lambda i, now, stats: hits.append(i))
        assert len(hits) == 20     # duration / delta_t

    def test_incast_toggle(self):
        with_incast = tiny_scenario(incast=True, seed=9)
        without = tiny_scenario(incast=False, seed=9)
        a = run_scenario("secn1", with_incast)
        b = run_scenario("secn1", without)
        assert a.flows_total > b.flows_total

    def test_external_network_respected(self):
        from repro.netsim.fluid import FluidNetwork
        from repro.netsim.flow import Flow
        cfg = tiny_scenario()
        net = FluidNetwork(cfg.fluid, seed=0)
        net.start_flow(Flow(1, "h0", "h4", 100_000))
        r = run_scenario("secn1", cfg, network=net)
        assert r.flows_total == 1
