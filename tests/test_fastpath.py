"""Differential tests for :mod:`repro.fastpath` — fast vs reference.

The fastpath contract is *bit-identity*: every optimized implementation
(batched cross-agent inference, vectorized GAE, fused Adam, tuple-heap
event loop, scratch-buffer fluid step) must produce exactly the bytes
the pre-existing reference loops produce, across seeds and workloads.
These tests pin that contract; ``python -m repro bench --hotpath``
re-proves it on the full benchmark workloads.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.netsim.engine import Simulator
from repro.rl.gae import compute_gae, discounted_returns
from repro.rl.ippo import IPPOTrainer
from repro.rl.nn import MLP, clip_gradients
from repro.rl.ppo import PPOConfig


def _canon(x):
    """Canonical nested representation with exact float equality."""
    if isinstance(x, dict):
        return {k: _canon(v) for k, v in sorted(x.items(), key=lambda kv: str(kv[0]))}
    if isinstance(x, (list, tuple)):
        return [_canon(v) for v in x]
    if isinstance(x, np.ndarray):
        return x.tobytes()
    return x


# ------------------------------------------------------------ batched IPPO
def _rollout(fastpath, seed, n_agents=4, steps=30, updates=2):
    """Drive act/record/update for a few cycles; return everything observable."""
    cfg = PPOConfig(obs_dim=6, n_actions=10, hidden=(16, 16), seed=seed,
                    minibatch_size=16, epochs=2, fastpath=fastpath)
    ids = [f"sw{i}" for i in range(n_agents)]
    trainer = IPPOTrainer(ids, cfg)
    obs_rng = np.random.default_rng(seed + 1000)
    log = []
    for u in range(updates):
        for t in range(steps):
            obs = {aid: obs_rng.normal(size=6) for aid in ids}
            eps = {aid: 0.2 if (t + i) % 3 else 0.0 for i, aid in enumerate(ids)}
            dec = trainer.act(obs, epsilons=eps)
            vals = trainer.values(obs)
            log.append((_canon(dec), _canon(vals)))
            rewards = {aid: float(obs_rng.normal()) for aid in ids}
            dones = {aid: t == steps - 1 for aid in ids}
            trainer.record(obs, dec, rewards, dones)
        last = {aid: obs_rng.normal(size=6) for aid in ids}
        stats = trainer.update(last)
        log.append(_canon(stats))
    return log, _canon(trainer.state_dict())


@pytest.mark.parametrize("seed", [0, 7, 123])
def test_batched_ippo_bit_identical(seed):
    fast = _rollout(True, seed)
    ref = _rollout(False, seed)
    assert fast == ref


def test_heterogeneous_agents_fall_back_to_per_agent_loop():
    cfg = PPOConfig(obs_dim=5, n_actions=4, hidden=(8,), seed=3, fastpath=True)
    trainer = IPPOTrainer(["a", "b"], cfg)
    # Make agent b's actor a different shape -> stacking must fail ...
    trainer.agents["b"].actor = MLP([5, 12, 4], activation="tanh",
                                    rng=np.random.default_rng(0))
    assert trainer._stacked() is None
    # ... and the per-agent loop must still serve act()/values().
    obs = {"a": np.zeros(5), "b": np.ones(5)}
    dec = trainer.act(obs, greedy=True)
    assert set(dec) == {"a", "b"}
    vals = trainer.values(obs)
    assert vals["a"] == trainer.agents["a"].value(obs["a"])


# ------------------------------------------------------------ vectorized GAE
@given(seed=st.integers(0, 2**16), t=st.integers(1, 40))
@settings(max_examples=40, deadline=None)
def test_gae_fastpath_exact(seed, t):
    rng = np.random.default_rng(seed)
    rewards = rng.normal(size=t)
    values = rng.normal(size=t)
    dones = rng.random(t) < 0.2
    truncs = dones & (rng.random(t) < 0.5)
    boots = np.where(truncs, rng.normal(size=t), 0.0)
    last_value = float(rng.normal())
    a_f, r_f = compute_gae(rewards, values, dones, last_value, 0.99, 0.95,
                           truncateds=truncs, bootstrap_values=boots,
                           fastpath=True)
    a_r, r_r = compute_gae(rewards, values, dones, last_value, 0.99, 0.95,
                           truncateds=truncs, bootstrap_values=boots,
                           fastpath=False)
    assert a_f.tobytes() == a_r.tobytes()
    assert r_f.tobytes() == r_r.tobytes()
    d_f = discounted_returns(rewards, dones, last_value, 0.99, fastpath=True)
    d_r = discounted_returns(rewards, dones, last_value, 0.99, fastpath=False)
    assert d_f.tobytes() == d_r.tobytes()


# ------------------------------------------------------------ event engine
@given(st.data())
@settings(max_examples=30, deadline=None)
def test_engine_pending_counter_matches_scan(data):
    """Random schedule/cancel/run in both heap layouts: the O(1) counter
    always equals the O(n) heap scan, and both modes execute the same
    event sequence."""
    ops = data.draw(st.lists(
        st.tuples(st.sampled_from(["schedule", "cancel", "run"]),
                  st.floats(0.0, 1.0, allow_nan=False)),
        min_size=1, max_size=60))
    fired = {True: [], False: []}
    pend = {True: [], False: []}
    for fastpath in (True, False):
        sim = Simulator(fastpath=fastpath)
        handles = []
        for i, (op, x) in enumerate(ops):
            if op == "schedule":
                handles.append(sim.schedule(x, fired[fastpath].append, i))
            elif op == "cancel" and handles:
                handles[int(x * (len(handles) - 1))].cancel()
            elif op == "run":
                sim.run(until=sim.now + x)
            assert sim.pending() == sim._scan_pending()
            pend[fastpath].append(sim.pending())
        sim.run()
        assert sim.pending() == sim._scan_pending() == 0
    assert fired[True] == fired[False]
    assert pend[True] == pend[False]


def test_engine_cancel_after_fire_does_not_corrupt_counter():
    sim = Simulator(fastpath=True)
    ev = sim.schedule(0.1, lambda: None)
    sim.run(until=0.2)
    assert sim.pending() == 0
    ev.cancel()           # transports re-arm timers from inside callbacks
    ev.cancel()
    assert sim.pending() == 0 == sim._scan_pending()


# ------------------------------------------------------------ clip_gradients
def test_clip_gradients_pins_pre_clip_norm():
    rng = np.random.default_rng(0)
    grads = [rng.normal(size=(24, 64)), rng.normal(size=64),
             rng.normal(size=(64, 10)), rng.normal(size=10)]
    expect = float(np.sqrt(sum(float((g ** 2).sum()) for g in grads)))
    copies = [g.copy() for g in grads]
    total = clip_gradients(copies, max_norm=0.5)
    # the vectorized np.dot reduction must keep the seed's exact norm
    assert total == expect
    scale = 0.5 / expect
    for before, after in zip(grads, copies):
        assert after.tobytes() == (before * scale).tobytes()
    # under the clip threshold: untouched, same norm convention
    small = [g * 1e-6 for g in grads]
    keep = [g.copy() for g in small]
    total_small = clip_gradients(small, max_norm=0.5)
    assert total_small == expect * 1e-6 or total_small == float(
        np.sqrt(sum(float((g ** 2).sum()) for g in keep)))
    for a, b in zip(small, keep):
        assert a.tobytes() == b.tobytes()


# ------------------------------------------------------------ simulators
def test_fluid_network_fastpath_bit_identical():
    from repro.fastpath.bench import HOTPATH_WORKLOADS, fingerprint
    run_f, _ = HOTPATH_WORKLOADS["fluid_sim"](True, True)
    run_r, _ = HOTPATH_WORKLOADS["fluid_sim"](False, True)
    assert fingerprint(run_f()) == fingerprint(run_r())


def test_packet_network_fastpath_bit_identical():
    from repro.fastpath.bench import HOTPATH_WORKLOADS, fingerprint
    run_f, _ = HOTPATH_WORKLOADS["packet_sim"](True, True)
    run_r, _ = HOTPATH_WORKLOADS["packet_sim"](False, True)
    assert fingerprint(run_f()) == fingerprint(run_r())


def test_control_loop_fastpath_bit_identical():
    from repro.fastpath.bench import HOTPATH_WORKLOADS, fingerprint
    run_f, _ = HOTPATH_WORKLOADS["tick_loop"](True, True)
    run_r, _ = HOTPATH_WORKLOADS["tick_loop"](False, True)
    assert fingerprint(run_f()) == fingerprint(run_r())


# The bench workloads above exercise the networks through the harness;
# the two tests below construct the twins *directly* so the reference
# legs of FluidNetwork/PacketNetwork (__init__, advance, queue_stats,
# _flow_observations with fastpath=False) are pinned by name — the
# PET103 dual-path-parity contract.

def _twin_fluid(fastpath):
    from repro.netsim.flow import Flow
    from repro.netsim.fluid import FluidConfig, FluidNetwork

    net = FluidNetwork(FluidConfig(n_spine=1, n_leaf=2, hosts_per_leaf=2,
                                   host_rate_bps=1e8, spine_rate_bps=4e8),
                       seed=5, fastpath=fastpath)
    net.start_flows([Flow(i, f"h{i}", "h3", 120_000) for i in range(3)])
    for _ in range(5):
        net.advance(0.002)
    return net


def test_fluid_network_reference_twin_direct():
    fast, ref = _twin_fluid(True), _twin_fluid(False)
    assert fast.queue_stats() == ref.queue_stats()
    assert fast._flow_observations() == ref._flow_observations()


def test_packet_network_reference_twin_direct():
    from repro.netsim.flow import Flow
    from repro.netsim.network import PacketNetwork
    from repro.netsim.topology import TopologyConfig

    stats = {}
    for fastpath in (True, False):
        net = PacketNetwork(TopologyConfig(n_spine=1, n_leaf=2,
                                           hosts_per_leaf=2,
                                           host_rate_bps=1e8,
                                           spine_rate_bps=4e8),
                            seed=5, fastpath=fastpath)
        net.start_flows([Flow(i, f"h{i}", "h3", 30_000) for i in range(3)])
        net.advance(0.02)
        stats[fastpath] = net.queue_stats()
    assert stats[True] == stats[False]


# ------------------------------------------------------------ bench harness
def test_hotpath_bench_quick_smoke(tmp_path):
    import json

    from repro.fastpath.bench import hotpath_main

    out = tmp_path / "bench.json"
    rc = hotpath_main(["--quick", "--repeat", "1", "--workload", "ppo_update",
                       "--out", str(out), "--no-attribution"])
    assert rc == 0
    report = json.loads(out.read_text())
    (w,) = report["workloads"]
    assert w["name"] == "ppo_update" and w["results_match"] is True
    # regression guard: a doctored baseline with a huge speedup must fail
    doctored = dict(report)
    doctored["workloads"] = [dict(w, speedup=w["speedup"] * 100)]
    base = tmp_path / "base.json"
    base.write_text(json.dumps(doctored))
    rc = hotpath_main(["--quick", "--repeat", "1", "--workload", "ppo_update",
                       "--out", str(out), "--no-attribution",
                       "--baseline", str(base)])
    assert rc != 0
