"""Fat-tree topology + config validation (repro.netsim.fattree).

Covers the multi-pod builder (structure, naming, routing reachability
through the packet simulator), the config dimension checks, and the
``base_rtt`` derivation contract shared with :class:`FluidConfig`: the
propagation RTT is derived from the link delays unless explicitly
given, and an explicit value inconsistent with the delays is rejected
instead of silently skewing FCT normalization.
"""

import networkx as nx
import pytest

from repro.netsim.fattree import FatTreeConfig, FatTreeTopology
from repro.netsim.flow import Flow
from repro.netsim.fluid import FluidConfig
from repro.netsim.network import PacketNetwork
from repro.netsim.engine import Simulator
from repro.netsim.topology import LeafSpineTopology, TopologyConfig


class TestFatTreeConfig:
    def test_counts(self):
        cfg = FatTreeConfig(n_pods=4, edge_per_pod=2, agg_per_pod=2,
                            core_per_agg=2, hosts_per_edge=4)
        assert cfg.n_core == 4
        assert cfg.n_edge == 8 and cfg.n_agg == 8
        assert cfg.n_switches == 20
        assert cfg.hosts_per_pod == 8 and cfg.n_hosts == 32

    def test_host_to_pod_and_edge_mapping(self):
        cfg = FatTreeConfig.small()          # 2 pods, 2 edges, 2 hosts/edge
        assert cfg.pod_of_host(0) == 0 and cfg.pod_of_host(7) == 1
        assert cfg.edge_of_host(2) == 1 and cfg.edge_of_host(4) == 0

    def test_production_scale_meets_the_capacity_floor(self):
        cfg = FatTreeConfig.production_scale()
        assert cfg.n_switches >= 64
        assert cfg.n_hosts >= 256

    @pytest.mark.parametrize("field", ["n_pods", "edge_per_pod",
                                       "agg_per_pod", "core_per_agg",
                                       "hosts_per_edge"])
    def test_rejects_nonpositive_dimensions(self, field):
        with pytest.raises(ValueError):
            FatTreeConfig(**{field: 0})

    def test_base_rtt_derived_from_link_delays(self):
        cfg = FatTreeConfig()
        # 5-hop inter-pod path: 2 host links + 4 fabric links each way
        assert cfg.base_rtt == 2 * (2 * cfg.host_link_delay
                                    + 4 * cfg.fabric_link_delay)
        assert cfg.base_rtt == pytest.approx(24e-6)

    def test_explicit_consistent_base_rtt_accepted(self):
        cfg = FatTreeConfig(base_rtt=24e-6)
        assert cfg.base_rtt == 24e-6

    def test_inconsistent_base_rtt_rejected(self):
        with pytest.raises(ValueError, match="base_rtt"):
            FatTreeConfig(base_rtt=16e-6)

    def test_nonpositive_link_delay_rejected(self):
        with pytest.raises(ValueError):
            FatTreeConfig(host_link_delay=0.0)


class TestFluidConfigBaseRTT:
    """The leaf–spine fluid config shares the derivation contract."""

    def test_default_matches_the_historical_constant(self):
        # pre-refactor FluidConfig hardcoded base_rtt = 16e-6; deriving
        # it from the default 2 us link delays must not move any number
        assert FluidConfig().base_rtt == pytest.approx(16e-6)

    def test_derivation_tracks_the_delays(self):
        cfg = FluidConfig(host_link_delay=1e-6, fabric_link_delay=3e-6)
        assert cfg.base_rtt == 2 * (2 * 1e-6 + 2 * 3e-6)

    def test_inconsistent_base_rtt_rejected(self):
        with pytest.raises(ValueError, match="base_rtt"):
            FluidConfig(base_rtt=99e-6)

    def test_consistent_base_rtt_accepted(self):
        assert FluidConfig(base_rtt=16e-6).base_rtt == 16e-6


class TestFatTreeTopology:
    def _topo(self, cfg=None):
        cfg = cfg or FatTreeConfig.small()
        return cfg, FatTreeTopology(cfg, Simulator())

    def test_switch_inventory_and_names(self):
        cfg, topo = self._topo()
        names = [s.name for s in topo.switches()]
        assert len(names) == cfg.n_switches
        assert names[0] == "pod0.edge0"
        assert f"core{cfg.n_core - 1}" in names
        assert len(set(names)) == len(names)

    def test_graph_is_connected(self):
        cfg, topo = self._topo()
        g = topo.graph()
        assert nx.is_connected(g)
        assert g.number_of_nodes() == cfg.n_switches + cfg.n_hosts

    def test_edge_of_unknown_host_raises_keyerror(self):
        _, topo = self._topo()
        with pytest.raises(KeyError, match="h99"):
            topo.edge_of("h99")
        with pytest.raises(KeyError, match="bogus"):
            topo.edge_of("bogus")

    def test_packet_interpod_flow_crosses_the_core(self):
        cfg = FatTreeConfig.small()
        net = PacketNetwork(cfg, seed=0)
        net.start_flows([Flow(0, "h0", f"h{cfg.n_hosts - 1}", 40_000,
                              start_time=0.0)])
        net.advance(0.05)
        stats = net.queue_stats()
        assert len(net.finished_flows) == 1
        core_tx = sum(stats[f"core{c}"].tx_bytes for c in range(cfg.n_core))
        assert core_tx > 0, "inter-pod bytes never traversed the core plane"


class TestLeafSpineNodeLookupErrors:
    """Bare int() parses used to surface as ValueError with no context;
    unknown nodes must raise KeyError naming the node."""

    def test_leaf_of_unknown_host(self):
        topo = LeafSpineTopology(TopologyConfig(), Simulator())
        with pytest.raises(KeyError, match="spurious"):
            topo.leaf_of("spurious")
        with pytest.raises(KeyError, match="h999"):
            topo.leaf_of("h999")

    def test_fluid_switch_id_unknown_switch(self):
        from repro.netsim.fluid import FluidNetwork
        net = FluidNetwork(FluidConfig(), seed=0)
        with pytest.raises(KeyError, match="leaf99"):
            net._switch_id("leaf99")
        with pytest.raises(KeyError, match="frobnicator"):
            net._switch_id("frobnicator")
