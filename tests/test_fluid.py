"""Tests for the fluid-model simulator."""

import numpy as np
import pytest

from repro.netsim.ecn import ECNConfig
from repro.netsim.flow import Flow
from repro.netsim.fluid import FluidConfig, FluidNetwork


def mk_net(seed=0, **kw):
    defaults = dict(n_spine=2, n_leaf=2, hosts_per_leaf=4,
                    host_rate_bps=10e9, spine_rate_bps=40e9)
    defaults.update(kw)
    return FluidNetwork(FluidConfig(**defaults), seed=seed)


class TestBasics:
    def test_names_match_packet_model_convention(self):
        net = mk_net()
        assert net.switch_names() == ["leaf0", "leaf1", "spine0", "spine1"]
        assert net.host_names()[0] == "h0"
        assert len(net.host_names()) == 8

    def test_duplicate_flow_rejected(self):
        net = mk_net()
        net.start_flow(Flow(1, "h0", "h4", 1_000_000))
        with pytest.raises(ValueError):
            net.start_flow(Flow(1, "h0", "h4", 1_000_000))

    def test_unknown_host_rejected(self):
        net = mk_net()
        with pytest.raises(ValueError):
            net.start_flow(Flow(1, "h99", "h0", 1000))

    def test_advance_validates(self):
        with pytest.raises(ValueError):
            mk_net().advance(0.0)

    def test_single_flow_completes_near_ideal_time(self):
        net = mk_net()
        f = Flow(1, "h0", "h4", 10_000_000)   # 10 MB at 10 Gbps = 8 ms
        net.start_flow(f)
        net.advance(0.05)
        assert f.done
        assert f.fct == pytest.approx(8e-3, rel=0.3)

    def test_intra_leaf_flow_completes(self):
        net = mk_net()
        f = Flow(1, "h0", "h1", 5_000_000)
        net.start_flow(f)
        net.advance(0.05)
        assert f.done

    def test_deferred_start(self):
        net = mk_net()
        f = Flow(1, "h0", "h4", 1_000_000, start_time=0.01)
        net.start_flow(f)
        net.advance(0.005)
        assert not f.done
        net.advance(0.05)
        assert f.done
        assert f.finish_time > 0.01


class TestConservationAndSharing:
    def test_nic_caps_aggregate_send_rate(self):
        """Many flows from one host cannot exceed the host line rate."""
        net = mk_net()
        flows = [Flow(i, "h0", f"h{4 + i % 4}", 50_000_000) for i in range(8)]
        net.start_flows(flows)
        net.advance(5e-3)
        stats = net.queue_stats()
        # leaf0's uplink tx cannot exceed what one host can inject (plus
        # small integration slack)
        line_Bps = 10e9 / 8
        interval = stats["leaf0"].interval
        assert stats["leaf0"].tx_bytes <= line_Bps * interval * 1.2

    def test_completed_bytes_bounded_by_capacity(self):
        net = mk_net()
        f = Flow(1, "h0", "h4", 100_000_000)
        net.start_flow(f)
        net.advance(1e-3)
        # cannot have delivered more than line-rate * time
        delivered = f.size_bytes - net.f_remaining[0]
        assert delivered <= 10e9 / 8 * 1.2e-3

    def test_flow_slots_reused(self):
        net = mk_net()
        for i in range(5):
            net.start_flow(Flow(i, "h0", "h4", 10_000, start_time=i * 1e-3))
        net.advance(0.05)
        assert all(f.done for f in net.flow_objs.values())
        assert net._n_flows <= 5


class TestQueueDynamics:
    def test_overload_builds_queue(self):
        net = mk_net()
        net.set_ecn_all(ECNConfig(5_000_000, 8_000_000, 0.01))  # barely mark
        flows = [Flow(i, f"h{i}", "h4", 50_000_000) for i in range(3)]
        net.start_flows(flows)
        net.advance(2e-3)
        stats = net.queue_stats()
        assert stats["leaf1"].max_port_qlen_bytes > 100_000

    def test_queue_drains_after_flows_finish(self):
        net = mk_net()
        flows = [Flow(i, f"h{i}", "h4", 500_000) for i in range(3)]
        net.start_flows(flows)
        net.advance(0.05)
        net.queue_stats()
        net.advance(0.01)
        stats = net.queue_stats()
        assert all(f.done for f in flows)
        assert stats["leaf1"].qlen_bytes < 1_000

    def test_lower_ecn_threshold_means_shorter_queue(self):
        def avg_queue(ecn):
            net = mk_net(seed=1)
            net.set_ecn_all(ecn)
            flows = [Flow(i, f"h{i}", "h4", 80_000_000) for i in range(3)]
            net.start_flows(flows)
            net.advance(5e-3)
            return net.queue_stats()["leaf1"].avg_qlen_bytes

        low = avg_queue(ECNConfig(5_000, 20_000, 1.0))
        high = avg_queue(ECNConfig(2_000_000, 4_000_000, 0.05))
        assert low < high

    def test_lower_threshold_marks_more_in_transient(self):
        """Before AIMD closes the loop, a lower threshold must mark more.

        (At equilibrium the marked *fraction* converges to whatever the
        AIMD needs to hold the rate, so the comparison is only meaningful
        on the initial transient.)
        """
        def marked_frac(ecn):
            net = mk_net(seed=1)
            net.set_ecn_all(ecn)
            flows = [Flow(i, f"h{i}", "h4", 80_000_000) for i in range(3)]
            net.start_flows(flows)
            net.advance(4e-4)   # queue ~500 KB: past 20KB, below 2MB
            st = net.queue_stats()["leaf1"]
            return st.tx_marked_bytes / max(st.tx_bytes, 1)

        assert marked_frac(ECNConfig(5_000, 20_000, 1.0)) > \
            marked_frac(ECNConfig(2_000_000, 4_000_000, 0.05))

    def test_buffer_cap_enforced(self):
        net = mk_net()
        net.set_ecn_all(ECNConfig(50_000_000, 90_000_000, 0.01))
        flows = [Flow(i, f"h{i % 4}", "h4", 500_000_000) for i in range(12)]
        net.start_flows(flows)
        net.advance(0.02)
        assert net.q_len.max() <= net.config.switch_buffer_bytes + 1


class TestStatsInterface:
    def test_queue_stats_shape(self):
        net = mk_net()
        net.start_flow(Flow(1, "h0", "h4", 5_000_000))
        net.advance(1e-3)
        stats = net.queue_stats()
        assert set(stats) == set(net.switch_names())
        st = stats["leaf0"]
        assert st.interval == pytest.approx(1e-3, rel=0.1)
        assert st.capacity_bps > 0
        assert st.ecn is not None

    def test_stats_reset_each_interval(self):
        net = mk_net()
        net.start_flow(Flow(1, "h0", "h4", 5_000_000))
        net.advance(1e-3)
        net.queue_stats()
        net.advance(1e-3)
        st = net.queue_stats()["leaf0"]
        assert st.interval == pytest.approx(1e-3, rel=0.1)

    def test_flow_observations_on_path_switches(self):
        net = mk_net()
        net.start_flow(Flow(9, "h0", "h4", 50_000_000))
        net.advance(1e-3)
        stats = net.queue_stats()
        assert 9 in stats["leaf1"].flow_obs      # destination leaf
        spine_obs = [9 in stats[s].flow_obs for s in ("spine0", "spine1")]
        assert sum(spine_obs) == 1               # exactly one spine on path

    def test_set_ecn_per_switch(self):
        net = mk_net()
        cfg = ECNConfig(111, 222, 0.33)
        net.set_ecn("leaf0", cfg)
        stats_ecn = net._ecn_by_switch[0]
        assert stats_ecn == cfg
        assert net._ecn_by_switch[1] != cfg

    def test_latency_samples(self):
        net = mk_net()
        net.start_flows([Flow(i, f"h{i}", "h4", 20_000_000) for i in range(3)])
        net.advance(2e-3)
        assert len(net.latencies) > 0
        assert all(lat >= 0 for _, lat in net.latencies)


class TestFailures:
    def test_fail_uplinks_reduces_capacity(self):
        net = mk_net()
        before = net.q_cap.sum()
        n = net.fail_uplinks(0.5, rng=np.random.default_rng(0))
        assert n >= 1
        assert net.q_cap.sum() < before
        net.restore_uplinks()
        assert net.q_cap.sum() == pytest.approx(before)

    def test_flows_rerouted_off_failed_spine(self):
        net = mk_net(seed=2)
        flows = [Flow(i, "h0", "h4", 100_000_000) for i in range(8)]
        net.start_flows(flows)
        net.advance(1e-3)
        # kill every uplink through spine0
        net.uplink_up[:, 0] = False
        net._apply_link_state()
        for i in np.flatnonzero(net.f_active[:net._n_flows]):
            assert net.f_spine[i] != 0

    def test_failure_fraction_validation(self):
        with pytest.raises(ValueError):
            mk_net().fail_uplinks(0.0)

    def test_flows_complete_despite_failures(self):
        net = mk_net(seed=3)
        flows = [Flow(i, f"h{i % 4}", f"h{4 + i % 4}", 2_000_000)
                 for i in range(6)]
        net.start_flows(flows)
        net.advance(1e-3)
        net.fail_uplinks(0.25, rng=np.random.default_rng(1))
        net.advance(0.05)
        assert all(f.done for f in flows)


class TestCrossModelConsistency:
    """The fluid model should agree qualitatively with the packet model."""

    def test_ecn_threshold_direction_matches_packet_model(self):
        # Fluid: lower threshold -> shorter queue (asserted above).
        # Packet: same direction, small scenario.
        from repro.netsim.network import PacketNetwork
        from repro.netsim.topology import TopologyConfig

        def packet_queue(ecn):
            pn = PacketNetwork(TopologyConfig(
                n_spine=1, n_leaf=2, hosts_per_leaf=2,
                host_rate_bps=1e8, spine_rate_bps=4e8), seed=0)
            pn.set_ecn_all(ecn)
            pn.start_flows([Flow(i, f"h{i}", "h3", 400_000) for i in range(2)])
            pn.advance(0.02)
            return pn.queue_stats()["leaf1"].avg_qlen_bytes

        low = packet_queue(ECNConfig(2_000, 8_000, 1.0))
        high = packet_queue(ECNConfig(500_000, 900_000, 0.05))
        assert low < high
