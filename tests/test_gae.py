"""Tests for Generalized Advantage Estimation (paper Eq. 9-10)."""

import numpy as np
import pytest

from repro.rl.gae import compute_gae, discounted_returns


class TestComputeGAE:
    def test_single_step(self):
        adv, ret = compute_gae(rewards=[1.0], values=[0.5], dones=[False],
                               last_value=2.0, gamma=0.9, lam=0.95)
        # delta = 1 + 0.9*2 - 0.5 = 2.3
        assert adv[0] == pytest.approx(2.3)
        assert ret[0] == pytest.approx(2.8)

    def test_terminal_step_no_bootstrap(self):
        adv, _ = compute_gae([1.0], [0.5], [True], last_value=99.0,
                             gamma=0.9, lam=0.95)
        assert adv[0] == pytest.approx(0.5)   # 1 - 0.5, last_value ignored

    def test_matches_hand_computation(self):
        r = np.array([1.0, 0.0, 2.0])
        v = np.array([0.5, 0.4, 0.3])
        gamma, lam = 0.9, 0.8
        deltas = np.array([
            r[0] + gamma * v[1] - v[0],
            r[1] + gamma * v[2] - v[1],
            r[2] + gamma * 1.0 - v[2],
        ])
        expected2 = deltas[2]
        expected1 = deltas[1] + gamma * lam * expected2
        expected0 = deltas[0] + gamma * lam * expected1
        adv, ret = compute_gae(r, v, [False] * 3, last_value=1.0,
                               gamma=gamma, lam=lam)
        np.testing.assert_allclose(adv, [expected0, expected1, expected2])
        np.testing.assert_allclose(ret, adv + v)

    def test_lambda_zero_is_td_error(self):
        r = np.array([1.0, 2.0])
        v = np.array([0.5, 0.4])
        adv, _ = compute_gae(r, v, [False, False], last_value=0.3,
                             gamma=0.9, lam=0.0)
        np.testing.assert_allclose(adv, [1 + 0.9 * 0.4 - 0.5,
                                         2 + 0.9 * 0.3 - 0.4])

    def test_lambda_one_is_montecarlo_minus_value(self):
        r = np.array([1.0, 1.0, 1.0])
        v = np.array([0.0, 0.0, 0.0])
        gamma = 0.5
        adv, _ = compute_gae(r, v, [False, False, True], last_value=0.0,
                             gamma=gamma, lam=1.0)
        # discounted reward-to-go: [1 + .5 + .25, 1 + .5, 1]
        np.testing.assert_allclose(adv, [1.75, 1.5, 1.0])

    def test_done_resets_accumulation(self):
        r = np.array([1.0, 1.0])
        v = np.array([0.0, 0.0])
        adv, _ = compute_gae(r, v, [True, False], last_value=0.0,
                             gamma=0.9, lam=0.9)
        # first step terminal: advantage exactly its reward
        assert adv[0] == pytest.approx(1.0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            compute_gae([1.0], [0.5, 0.2], [False], 0.0, 0.9, 0.9)


class TestTruncation:
    """Time-limit truncation vs true termination (the headline bugfix:
    a truncated step bootstraps V of its successor instead of zeroing)."""

    def test_truncated_step_bootstraps_successor_value(self):
        adv, ret = compute_gae([1.0], [0.5], [True], last_value=0.0,
                               gamma=0.9, lam=0.95,
                               truncateds=[True], bootstrap_values=[2.0])
        # delta = 1 + 0.9 * V(s_T) - 0.5, V(s_T) = 2 (not zero)
        assert adv[0] == pytest.approx(2.3)
        assert ret[0] == pytest.approx(2.8)

    def test_terminated_step_still_zeroes_successor(self):
        adv, _ = compute_gae([1.0], [0.5], [True], last_value=0.0,
                             gamma=0.9, lam=0.95,
                             truncateds=[False], bootstrap_values=[2.0])
        assert adv[0] == pytest.approx(0.5)    # bootstrap_values ignored

    def test_truncation_still_cuts_advantage_chain(self):
        """Credit must not flow across the episode boundary even though
        the delta bootstraps through it."""
        adv, _ = compute_gae([1.0, 1.0], [0.0, 0.0], [True, False],
                             last_value=0.0, gamma=0.9, lam=0.9,
                             truncateds=[True, False],
                             bootstrap_values=[2.0, 0.0])
        # step 0 advantage is its own delta only: 1 + 0.9*2 = 2.8
        assert adv[0] == pytest.approx(2.8)

    def test_missing_bootstrap_values_fall_back_to_old_behaviour(self):
        adv, _ = compute_gae([1.0], [0.5], [True], last_value=0.0,
                             gamma=0.9, lam=0.95, truncateds=[True])
        assert adv[0] == pytest.approx(0.5)

    def test_truncateds_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            compute_gae([1.0], [0.5], [True], 0.0, 0.9, 0.9,
                        truncateds=[True, False])
        with pytest.raises(ValueError):
            compute_gae([1.0], [0.5], [True], 0.0, 0.9, 0.9,
                        truncateds=[True], bootstrap_values=[1.0, 2.0])

    def test_discounted_returns_restart_from_bootstrap(self):
        out = discounted_returns([1.0, 1.0], [True, False], last_value=10.0,
                                 gamma=0.9, truncateds=[True, False],
                                 bootstrap_values=[5.0, 0.0])
        assert out[0] == pytest.approx(1.0 + 0.9 * 5.0)
        assert out[1] == pytest.approx(1.0 + 0.9 * 10.0)


class TestDiscountedReturns:
    def test_simple_chain(self):
        out = discounted_returns([1.0, 1.0, 1.0], [False, False, False],
                                 last_value=0.0, gamma=0.5)
        np.testing.assert_allclose(out, [1.75, 1.5, 1.0])

    def test_bootstrap_from_last_value(self):
        out = discounted_returns([0.0], [False], last_value=10.0, gamma=0.9)
        assert out[0] == pytest.approx(9.0)

    def test_done_cuts_bootstrap(self):
        out = discounted_returns([1.0, 1.0], [True, False], last_value=10.0,
                                 gamma=0.9)
        assert out[0] == pytest.approx(1.0)
        assert out[1] == pytest.approx(10.0)
