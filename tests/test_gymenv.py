"""Tests for the Gym-style environment bridge (ns3-gym analogue)."""

import numpy as np
import pytest

from repro.core.config import PETConfig
from repro.gymenv import DCNEnv, EnvConfig, MultiAgentDCNEnv
from repro.netsim.fluid import FluidConfig


def env_config(**kw):
    kw.setdefault("pet", PETConfig(delta_t=1e-3, seed=0))
    kw.setdefault("fluid", FluidConfig(n_spine=1, n_leaf=2, hosts_per_leaf=2,
                                       host_rate_bps=10e9,
                                       spine_rate_bps=40e9))
    kw.setdefault("episode_intervals", 5)
    kw.setdefault("load", 0.4)
    return EnvConfig(**kw)


class TestDCNEnv:
    def test_reset_returns_obs(self):
        env = DCNEnv(env_config())
        obs = env.reset()
        assert obs.shape == (env.obs_dim,)
        assert np.all(np.isfinite(obs))

    def test_step_contract(self):
        env = DCNEnv(env_config())
        env.reset()
        obs, reward, done, info = env.step(0)
        assert obs.shape == (env.obs_dim,)
        assert np.isfinite(reward)
        assert not done
        assert "utilization" in info and "ecn" in info

    def test_episode_terminates(self):
        env = DCNEnv(env_config(episode_intervals=3))
        env.reset()
        dones = [env.step(0)[2] for _ in range(3)]
        assert dones == [False, False, True]

    def test_step_before_reset_raises(self):
        env = DCNEnv(env_config())
        with pytest.raises(RuntimeError):
            env.step(0)

    def test_action_changes_switch_ecn(self):
        env = DCNEnv(env_config())
        env.reset()
        a = env.n_actions - 1
        env.step(a)
        applied = env.net._ecn_by_switch[env.net._switch_id(env.agent_switch)]
        assert applied == env.codec.decode(a)

    def test_reset_gives_fresh_episode(self):
        env = DCNEnv(env_config(episode_intervals=2))
        env.reset()
        env.step(0)
        env.step(0)
        obs = env.reset()
        assert obs.shape == (env.obs_dim,)
        assert env._t == 0

    def test_invalid_action_rejected(self):
        env = DCNEnv(env_config())
        env.reset()
        with pytest.raises(IndexError):
            env.step(env.n_actions)

    def test_reward_higher_when_queue_short(self):
        """Empty network should earn the full latency term."""
        env = DCNEnv(env_config(load=0.05))
        env.reset()
        _, reward, _, info = env.step(0)
        assert info["avg_qlen_bytes"] < 10_000
        assert reward > env.config.pet.beta2 * 0.8


class TestMultiAgentDCNEnv:
    def test_reset_returns_per_switch_obs(self):
        env = MultiAgentDCNEnv(env_config())
        obs = env.reset()
        assert set(obs) == set(env.agents)
        assert len(env.agents) == 3    # 2 leaves + 1 spine
        for o in obs.values():
            assert o.shape == (env.obs_dim,)

    def test_step_contract(self):
        env = MultiAgentDCNEnv(env_config())
        obs = env.reset()
        actions = {s: 0 for s in env.agents}
        obs, rewards, dones, info = env.step(actions)
        assert set(rewards) == set(env.agents)
        assert all(np.isfinite(r) for r in rewards.values())
        assert not any(dones.values())
        assert "mean_utilization" in info

    def test_done_for_all_agents_at_horizon(self):
        env = MultiAgentDCNEnv(env_config(episode_intervals=2))
        env.reset()
        env.step({s: 0 for s in env.agents})
        _, _, dones, _ = env.step({s: 0 for s in env.agents})
        assert all(dones.values())

    def test_per_switch_actions_apply_independently(self):
        env = MultiAgentDCNEnv(env_config())
        env.reset()
        acts = {s: i % env.n_actions for i, s in enumerate(env.agents)}
        env.step(acts)
        for s, a in acts.items():
            assert env.net._ecn_by_switch[env.net._switch_id(s)] == \
                env.codec.decode(a)

    def test_step_before_reset_raises(self):
        env = MultiAgentDCNEnv(env_config())
        with pytest.raises(RuntimeError):
            env.step({})


class TestIPPOOnEnv:
    def test_ippo_trains_against_multiagent_env(self):
        """Integration: the paper's learner runs on the paper's env API."""
        from repro.rl.ippo import IPPOTrainer
        from repro.rl.ppo import PPOConfig

        env = MultiAgentDCNEnv(env_config(episode_intervals=8))
        obs = env.reset()
        trainer = IPPOTrainer(env.agents, PPOConfig(
            obs_dim=env.obs_dim, n_actions=env.n_actions, hidden=(16, 16),
            seed=0))
        for _ in range(8):
            decisions = trainer.act(obs)
            actions = {s: d["action"] for s, d in decisions.items()}
            next_obs, rewards, dones, _ = env.step(actions)
            trainer.record(obs, decisions, rewards, dones)
            obs = next_obs
        stats = trainer.update(obs)
        assert set(stats) == set(env.agents)


class TestTimeLimitTruncation:
    """The horizon is a time limit, not a terminal state: done comes with
    info["TimeLimit.truncated"] so training loops can bootstrap V(s_T)."""

    def test_single_agent_flags_truncation_at_limit(self):
        env = DCNEnv(env_config(episode_intervals=2))
        env.reset()
        _, _, done, info = env.step(0)
        assert not done
        assert info["TimeLimit.truncated"] is False
        _, _, done, info = env.step(0)
        assert done
        assert info["TimeLimit.truncated"] is True

    def test_multiagent_flags_truncation_at_limit(self):
        env = MultiAgentDCNEnv(env_config(episode_intervals=2))
        obs = env.reset()
        acts = {a: 0 for a in obs}
        _, _, dones, info = env.step(acts)
        assert not any(dones.values())
        assert info["TimeLimit.truncated"] is False
        _, _, dones, info = env.step(acts)
        assert all(dones.values())
        assert info["TimeLimit.truncated"] is True
