"""Gym bridge with caller-supplied network factories."""

import numpy as np
import pytest

from repro.core.config import PETConfig
from repro.gymenv import DCNEnv, EnvConfig, MultiAgentDCNEnv
from repro.netsim.flow import Flow
from repro.netsim.fluid import FluidConfig, FluidNetwork


def custom_factory():
    """Deterministic scenario: one elephant and one mouse."""
    net = FluidNetwork(FluidConfig(n_spine=1, n_leaf=2, hosts_per_leaf=2,
                                   host_rate_bps=10e9, spine_rate_bps=40e9),
                       seed=0)
    net.start_flow(Flow(1, "h0", "h2", 20_000_000))
    net.start_flow(Flow(2, "h1", "h2", 50_000, start_time=2e-3))
    return net


def env_cfg():
    return EnvConfig(pet=PETConfig(delta_t=1e-3, seed=0),
                     episode_intervals=6)


class TestCustomFactory:
    def test_single_agent_uses_factory(self):
        env = DCNEnv(env_cfg(), network_factory=custom_factory)
        env.reset()
        assert len(env.net.flows) == 2
        obs, reward, done, info = env.step(0)
        assert np.isfinite(reward)

    def test_factory_called_per_reset(self):
        calls = []

        def factory():
            calls.append(1)
            return custom_factory()

        env = DCNEnv(env_cfg(), network_factory=factory)
        env.reset()
        env.reset()
        assert len(calls) == 2

    def test_multiagent_uses_factory(self):
        env = MultiAgentDCNEnv(env_cfg(), network_factory=custom_factory)
        obs = env.reset()
        assert set(obs) == {"leaf0", "leaf1", "spine0"}
        _, rewards, _, _ = env.step({s: 0 for s in env.agents})
        assert all(np.isfinite(r) for r in rewards.values())

    def test_episode_on_factory_traffic_observes_congestion(self):
        env = DCNEnv(env_cfg(), network_factory=custom_factory,)
        env.agent_switch = "leaf1"       # destination leaf sees the queue
        env.reset()
        utils = []
        for _ in range(6):
            _, _, done, info = env.step(0)
            utils.append(info["utilization"])
        assert max(utils) > 0.05         # the elephant shows up in stats
