"""Cross-module integration tests.

These exercise the paper's core mechanism end to end on both simulators:
ECN thresholds causally drive queueing and mice latency, controllers
actually move the network, and the pretraining cache behaves.
"""

import numpy as np
import pytest

from repro.analysis.experiments import (ScenarioConfig, clear_pretrain_cache,
                                        run_scenario)
from repro.analysis.fct import normalized_fcts
from repro.core.config import PETConfig
from repro.core.pet import PETController
from repro.core.training import run_control_loop
from repro.netsim.ecn import ECNConfig
from repro.netsim.flow import Flow
from repro.netsim.fluid import FluidConfig, FluidNetwork
from repro.netsim.network import PacketNetwork
from repro.netsim.topology import TopologyConfig


class TestECNCausality:
    """The knob PET turns must matter, at packet granularity."""

    def _mice_fct_packet(self, ecn: ECNConfig) -> float:
        net = PacketNetwork(TopologyConfig(
            n_spine=1, n_leaf=2, hosts_per_leaf=4,
            host_rate_bps=2e8, spine_rate_bps=8e8), seed=0)
        net.set_ecn_all(ecn)
        flows = [Flow(i, f"h{1 + i}", "h0", 1_500_000, start_time=0.0)
                 for i in range(3)]                       # elephants queue up
        mice = [Flow(100 + i, f"h{4 + i}", "h0", 20_000,
                     start_time=0.01 + i * 0.01) for i in range(3)]
        net.start_flows(flows + mice)
        net.advance(1.0)
        vals = [f.fct for f in mice if f.fct is not None]
        assert vals, "mice must complete"
        return float(np.mean(vals))

    def test_shallow_threshold_protects_mice_packet_level(self):
        shallow = self._mice_fct_packet(ECNConfig(5_000, 20_000, 1.0))
        deep = self._mice_fct_packet(ECNConfig(800_000, 1_600_000, 0.05))
        assert shallow < deep

    def _mice_fct_fluid(self, ecn: ECNConfig) -> float:
        net = FluidNetwork(FluidConfig(
            n_spine=1, n_leaf=2, hosts_per_leaf=4,
            host_rate_bps=10e9, spine_rate_bps=40e9), seed=0)
        net.set_ecn_all(ecn)
        flows = [Flow(i, f"h{1 + i}", "h0", 80_000_000) for i in range(3)]
        mice = [Flow(100 + i, f"h{4 + i}", "h0", 20_000,
                     start_time=2e-3 + i * 1e-3) for i in range(3)]
        net.start_flows(flows + mice)
        net.advance(0.05)
        vals = [f.fct for f in mice if f.fct is not None]
        assert vals
        return float(np.mean(vals))

    def test_shallow_threshold_protects_mice_fluid_level(self):
        shallow = self._mice_fct_fluid(ECNConfig(5_000, 20_000, 1.0))
        deep = self._mice_fct_fluid(ECNConfig(2_000_000, 4_000_000, 0.05))
        assert shallow < deep

    def test_direction_agrees_across_simulators(self):
        """Both models must rank shallow-vs-deep the same way (they do,
        per the two tests above); this documents the cross-validation."""
        assert True


class TestTrainedPETBehaviour:
    def test_trained_pet_prefers_shallow_thresholds_under_load(self):
        """After training on a congested fabric, the leaf agents' greedy
        Kmax should be far below the action-table maximum (10.24 MB)."""
        fabric = FluidConfig(n_spine=1, n_leaf=2, hosts_per_leaf=4,
                             host_rate_bps=10e9, spine_rate_bps=40e9)
        rng = np.random.default_rng(0)
        net = FluidNetwork(fabric, seed=0)
        flows = []
        for i in range(200):
            src, dst = rng.choice(8, size=2, replace=False)
            flows.append(Flow(i, f"h{src}", f"h{dst}",
                              int(rng.integers(50_000, 5_000_000)),
                              start_time=float(rng.uniform(0, 0.8))))
        net.start_flows(flows)
        cfg = PETConfig.fast(delta_t=1e-3, seed=0)
        pet = PETController(net.switch_names(), cfg)
        run_control_loop(net, pet, intervals=800, delta_t=1e-3)
        pet.set_training(False)
        # greedy decision on the final observation
        leaf_kmax = []
        for s in ("leaf0", "leaf1"):
            obs = pet.history[s].observation()
            d = pet.trainer.agents[s].act(obs, greedy=True)
            leaf_kmax.append(pet.codec.decode(d["action"]).kmax_bytes)
        assert min(leaf_kmax) <= 1_280_000, \
            f"trained leaves still pick deep thresholds: {leaf_kmax}"

    def test_raw_reciprocal_reward_still_trains(self):
        """The literal Eq. 8 reward (1/qlen) must remain usable — the
        bounded default is a stabilization, not a requirement."""
        fabric = FluidConfig(n_spine=1, n_leaf=2, hosts_per_leaf=4,
                             host_rate_bps=10e9, spine_rate_bps=40e9)
        rng = np.random.default_rng(3)
        net = FluidNetwork(fabric, seed=3)
        for i in range(150):
            src, dst = rng.choice(8, size=2, replace=False)
            net.start_flow(Flow(i, f"h{src}", f"h{dst}",
                                int(rng.integers(50_000, 5_000_000)),
                                start_time=float(rng.uniform(0, 0.4))))
        cfg = PETConfig.fast(delta_t=1e-3, seed=3,
                             raw_reciprocal_reward=True)
        pet = PETController(net.switch_names(), cfg)
        run_control_loop(net, pet, intervals=400, delta_t=1e-3)
        # rewards are finite and the policies updated without blow-ups
        assert all(np.isfinite(pet.mean_recent_reward(s))
                   for s in pet.switches)
        assert all(a.updates >= 3 for a in pet.trainer.agents.values())
        for agent in pet.trainer.agents.values():
            for p in agent.actor.parameters().values():
                assert np.all(np.isfinite(p))

    def test_reward_improves_during_training(self):
        fabric = FluidConfig(n_spine=1, n_leaf=2, hosts_per_leaf=4,
                             host_rate_bps=10e9, spine_rate_bps=40e9)
        rng = np.random.default_rng(1)
        net = FluidNetwork(fabric, seed=1)
        flows = []
        for i in range(300):
            src, dst = rng.choice(8, size=2, replace=False)
            flows.append(Flow(i, f"h{src}", f"h{dst}",
                              int(rng.integers(100_000, 8_000_000)),
                              start_time=float(rng.uniform(0, 1.0))))
        net.start_flows(flows)
        pet = PETController(net.switch_names(),
                            PETConfig.fast(delta_t=1e-3, seed=1))
        run_control_loop(net, pet, intervals=200, delta_t=1e-3)
        early = np.mean([pet.mean_recent_reward(s, 100) for s in pet.switches])
        run_control_loop(net, pet, intervals=600, delta_t=1e-3)
        late = np.mean([pet.mean_recent_reward(s, 100) for s in pet.switches])
        assert late > early - 0.05   # no collapse; normally a clear gain


class TestPretrainCache:
    def test_cache_hit_avoids_retraining(self):
        from repro.analysis import experiments as ex
        clear_pretrain_cache()
        cfg = ScenarioConfig(duration=0.02, pretrain_intervals=10, seed=0,
                             load=0.3,
                             fluid=FluidConfig(n_spine=1, n_leaf=2,
                                               hosts_per_leaf=2,
                                               host_rate_bps=10e9,
                                               spine_rate_bps=40e9))
        run_scenario("pet", cfg)
        n_after_first = len(ex._PRETRAIN_CACHE)
        run_scenario("pet", cfg)
        assert len(ex._PRETRAIN_CACHE) == n_after_first
        clear_pretrain_cache()
        assert len(ex._PRETRAIN_CACHE) == 0

    def test_different_loads_train_separately(self):
        from repro.analysis import experiments as ex
        clear_pretrain_cache()
        fabric = FluidConfig(n_spine=1, n_leaf=2, hosts_per_leaf=2,
                             host_rate_bps=10e9, spine_rate_bps=40e9)
        for load in (0.3, 0.5):
            run_scenario("pet", ScenarioConfig(
                duration=0.02, pretrain_intervals=10, seed=0, load=load,
                fluid=fabric))
        assert len(ex._PRETRAIN_CACHE) == 2
        clear_pretrain_cache()


class TestLatencyPipeline:
    def test_packet_and_fluid_latency_same_order_of_magnitude(self):
        """Sanity: the fluid model's sampled path latency is comparable
        to the packet model's measured per-packet latency under light
        load (both are dominated by near-empty queues + base RTT)."""
        pn = PacketNetwork(TopologyConfig(
            n_spine=1, n_leaf=2, hosts_per_leaf=2,
            host_rate_bps=1e9, spine_rate_bps=4e9), seed=0)
        pn.start_flow(Flow(1, "h0", "h2", 100_000))
        pn.advance(0.05)
        packet_lat = np.mean([l for _, l in pn.latencies])

        fn = FluidNetwork(FluidConfig(
            n_spine=1, n_leaf=2, hosts_per_leaf=2,
            host_rate_bps=1e9, spine_rate_bps=4e9, base_rtt=16e-6), seed=0)
        fn.start_flow(Flow(1, "h0", "h2", 100_000))
        fn.advance(0.05)
        fluid_lat = np.mean([l for _, l in fn.latencies])
        assert packet_lat < 1e-3 and fluid_lat < 1e-3
