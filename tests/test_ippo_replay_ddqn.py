"""Tests for IPPO orchestration, replay buffers, and Double DQN."""

import numpy as np
import pytest

from repro.rl.ddqn import DDQNAgent, DDQNConfig
from repro.rl.ippo import IPPOTrainer
from repro.rl.ppo import PPOConfig
from repro.rl.replay import GlobalReplayBuffer, ReplayBuffer, Transition


class TestIPPOTrainer:
    def _trainer(self, ids=("a", "b"), seed=0):
        cfg = PPOConfig(obs_dim=2, n_actions=3, hidden=(8, 8), seed=seed)
        return IPPOTrainer(ids, cfg)

    def test_agents_are_independent_parameterizations(self):
        tr = self._trainer()
        pa = tr.agents["a"].actor.state_dict()
        pb = tr.agents["b"].actor.state_dict()
        assert any(not np.allclose(pa[k], pb[k]) for k in pa)

    def test_act_and_record_per_agent(self):
        tr = self._trainer()
        obs = {"a": np.zeros(2), "b": np.ones(2)}
        decisions = tr.act(obs)
        assert set(decisions) == {"a", "b"}
        tr.record(obs, decisions, {"a": 1.0, "b": 0.0},
                  {"a": False, "b": False})
        assert len(tr.agents["a"].buffer) == 1
        assert len(tr.agents["b"].buffer) == 1

    def test_update_returns_per_agent_stats(self):
        tr = self._trainer()
        obs = {"a": np.zeros(2), "b": np.ones(2)}
        for _ in range(6):
            d = tr.act(obs)
            tr.record(obs, d, {"a": 1.0, "b": 0.5}, {"a": False, "b": False})
        stats = tr.update(obs)
        assert set(stats) == {"a", "b"}
        assert len(tr.agents["a"].buffer) == 0

    def test_no_experience_crosses_agents(self):
        """Agent b's buffer must not grow when only a records."""
        tr = self._trainer()
        tr.agents["a"].record(np.zeros(2), 0, 1.0, False, 0.0, 0.0)
        assert len(tr.agents["b"].buffer) == 0

    def test_broadcast_parameters(self):
        tr = self._trainer()
        src = tr.agents["a"].state_dict()
        tr.broadcast_parameters(src)
        pb = tr.agents["b"].actor.state_dict()
        for k, v in src["actor"].items():
            np.testing.assert_allclose(pb[k], v)

    def test_duplicate_or_empty_ids_rejected(self):
        cfg = PPOConfig(obs_dim=2, n_actions=2)
        with pytest.raises(ValueError):
            IPPOTrainer([], cfg)
        with pytest.raises(ValueError):
            IPPOTrainer(["x", "x"], cfg)


class TestReplayBuffer:
    def _t(self, i=0):
        return Transition(np.array([float(i)]), i % 3, float(i),
                          np.array([float(i + 1)]), False)

    def test_capacity_ring(self):
        buf = ReplayBuffer(3)
        for i in range(5):
            buf.push(self._t(i))
        assert len(buf) == 3

    def test_sample_shapes(self):
        buf = ReplayBuffer(10, rng=np.random.default_rng(0))
        for i in range(4):
            buf.push(self._t(i))
        obs, actions, rewards, next_obs, dones = buf.sample(8)
        assert obs.shape == (8, 1)
        assert actions.dtype == np.int64
        assert dones.dtype == bool

    def test_sample_empty_raises(self):
        with pytest.raises(ValueError):
            ReplayBuffer(4).sample(1)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ReplayBuffer(0)


class TestGlobalReplayBuffer:
    def test_exchange_accounting(self):
        """Each push is broadcast to the (n-1) peers — ACC's overhead."""
        g = GlobalReplayBuffer(100, ["s1", "s2", "s3"],
                               rng=np.random.default_rng(0))
        t = Transition(np.zeros(4), 0, 1.0, np.zeros(4), False)
        g.push("s1", t)
        assert g.bytes_exchanged["s1"] == t.nbytes() * 2
        assert g.bytes_exchanged["s2"] == 0
        assert g.total_bytes_exchanged() == t.nbytes() * 2
        assert g.pushes["s1"] == 1

    def test_shared_pool_visible_to_all(self):
        g = GlobalReplayBuffer(100, ["s1", "s2"],
                               rng=np.random.default_rng(0))
        g.add("s1", np.zeros(2), 1, 0.5, np.ones(2), False)
        obs, actions, *_ = g.sample(4)
        assert np.all(actions == 1)

    def test_unknown_agent_rejected(self):
        g = GlobalReplayBuffer(10, ["s1"])
        with pytest.raises(KeyError):
            g.add("zz", np.zeros(1), 0, 0.0, np.zeros(1), False)


class TestDDQN:
    def test_epsilon_decays_linearly(self):
        agent = DDQNAgent(DDQNConfig(obs_dim=2, n_actions=3, seed=0,
                                     eps_start=1.0, eps_end=0.0,
                                     eps_decay_steps=100))
        assert agent.epsilon() == pytest.approx(1.0)
        for _ in range(50):
            agent.act(np.zeros(2))
        assert agent.epsilon() == pytest.approx(0.5, abs=0.02)
        for _ in range(100):
            agent.act(np.zeros(2))
        assert agent.epsilon() == pytest.approx(0.0)

    def test_train_noop_until_warm(self):
        agent = DDQNAgent(DDQNConfig(obs_dim=2, n_actions=2, batch_size=16,
                                     seed=0))
        stats = agent.train_step()
        assert stats["trained"] == 0.0

    def test_target_network_syncs(self):
        cfg = DDQNConfig(obs_dim=2, n_actions=2, batch_size=4,
                         target_sync_interval=2, seed=0)
        agent = DDQNAgent(cfg)
        for i in range(20):
            agent.replay.add(np.ones(2) * i, i % 2, 1.0, np.ones(2), False)
        agent.train_step()
        diverged = any(
            not np.allclose(agent.q.state_dict()[k], agent.q_target.state_dict()[k])
            for k in agent.q.state_dict())
        assert diverged
        agent.train_step()   # second step triggers the hard sync
        for k, v in agent.q.state_dict().items():
            np.testing.assert_allclose(agent.q_target.state_dict()[k], v)

    def test_learns_bandit(self):
        """Constant state, action 1 pays 1, action 0 pays 0."""
        cfg = DDQNConfig(obs_dim=2, n_actions=2, batch_size=32, lr=5e-3,
                         gamma=0.0, eps_decay_steps=200, seed=1)
        agent = DDQNAgent(cfg)
        rng = np.random.default_rng(2)
        obs = np.ones(2)
        for _ in range(400):
            a = agent.act(obs)
            r = 1.0 if a == 1 else 0.0
            agent.replay.add(obs, a, r, obs, True)
            agent.train_step()
        assert agent.act(obs, greedy=True) == 1
        q = agent.q_values(obs)
        assert q[1] == pytest.approx(1.0, abs=0.2)

    def test_checkpoint_roundtrip(self):
        a = DDQNAgent(DDQNConfig(obs_dim=2, n_actions=3, seed=0))
        b = DDQNAgent(DDQNConfig(obs_dim=2, n_actions=3, seed=5))
        b.load_state_dict(a.state_dict())
        np.testing.assert_allclose(a.q_values(np.ones(2)),
                                   b.q_values(np.ones(2)))
