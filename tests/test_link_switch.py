"""Tests for output ports (serialization, ECN at enqueue) and switches (ECMP)."""

import numpy as np
import pytest

from repro.netsim.ecn import ECNConfig, ECNMarker
from repro.netsim.engine import Simulator
from repro.netsim.link import OutputPort
from repro.netsim.packet import Packet, PacketKind
from repro.netsim.queueing import ByteQueue
from repro.netsim.switch import SwitchNode


class Sink:
    """Terminal node recording deliveries with timestamps."""

    def __init__(self, sim, name="sink"):
        self.sim = sim
        self.name = name
        self.received = []

    def receive(self, pkt):
        self.received.append((self.sim.now, pkt))


def _pkt(flow_id=1, size=1000, dst="sink"):
    return Packet(flow_id=flow_id, src="src", dst=dst, size_bytes=size)


class TestOutputPort:
    def test_serialization_time(self):
        sim = Simulator()
        sink = Sink(sim)
        port = OutputPort(sim, owner="A", peer=sink, rate_bps=8_000_000,
                          prop_delay=1e-3)
        port.send(_pkt(size=1000))     # tx time = 8000 bits / 8 Mbps = 1 ms
        sim.run()
        t, _ = sink.received[0]
        assert t == pytest.approx(2e-3)   # 1 ms tx + 1 ms propagation

    def test_back_to_back_packets_serialize(self):
        sim = Simulator()
        sink = Sink(sim)
        port = OutputPort(sim, "A", sink, rate_bps=8_000_000, prop_delay=0.0)
        for i in range(3):
            port.send(_pkt(flow_id=i))
        sim.run()
        times = [t for t, _ in sink.received]
        np.testing.assert_allclose(times, [1e-3, 2e-3, 3e-3])

    def test_fifo_order_preserved(self):
        sim = Simulator()
        sink = Sink(sim)
        port = OutputPort(sim, "A", sink, rate_bps=1e9, prop_delay=0.0)
        for i in range(5):
            port.send(_pkt(flow_id=i))
        sim.run()
        assert [p.flow_id for _, p in sink.received] == list(range(5))

    def test_down_port_drops(self):
        sim = Simulator()
        sink = Sink(sim)
        port = OutputPort(sim, "A", sink, rate_bps=1e9, prop_delay=0.0)
        port.set_up(False)
        assert not port.send(_pkt())
        sim.run()
        assert sink.received == []
        assert port.queue.counters.dropped_pkts == 1

    def test_marker_marks_on_enqueue_when_backlogged(self):
        sim = Simulator()
        sink = Sink(sim)
        marker = ECNMarker(ECNConfig(0, 1, 1.0), rng=np.random.default_rng(0))
        port = OutputPort(sim, "A", sink, rate_bps=8_000, prop_delay=0.0,
                          marker=marker)
        port.send(_pkt(flow_id=1))   # queue empty at decision time -> no mark
        port.send(_pkt(flow_id=2))   # first packet is in flight; queue holds 0
        port.send(_pkt(flow_id=3))   # queue now backlogged -> marked
        sim.run()
        marked = [p.flow_id for _, p in sink.received if p.marked]
        assert 3 in marked
        assert 1 not in marked

    def test_control_packets_never_marked(self):
        sim = Simulator()
        sink = Sink(sim)
        marker = ECNMarker(ECNConfig(0, 1, 1.0), rng=np.random.default_rng(0))
        port = OutputPort(sim, "A", sink, rate_bps=8_000, prop_delay=0.0,
                          marker=marker, queue=ByteQueue(100_000))
        port.send(_pkt(size=1000))
        ack = Packet(flow_id=1, src="s", dst="sink", size_bytes=64,
                     kind=PacketKind.ACK)
        port.send(ack)
        sim.run()
        assert not ack.marked

    def test_int_records_appended(self):
        sim = Simulator()
        sink = Sink(sim)
        port = OutputPort(sim, "A", sink, rate_bps=1e9, prop_delay=0.0,
                          int_enabled=True)
        p = _pkt()
        p.int_records = []
        port.send(p)
        sim.run()
        assert len(p.int_records) == 1
        rec = p.int_records[0]
        assert rec.link_rate_bps == 1e9

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            OutputPort(sim, "A", "B", rate_bps=0, prop_delay=0.0)
        with pytest.raises(ValueError):
            OutputPort(sim, "A", "B", rate_bps=1e9, prop_delay=-1.0)


class TestSwitchECMP:
    def _switch_with_ports(self, sim, n_ports):
        sw = SwitchNode("sw")
        sinks = []
        for i in range(n_ports):
            sink = Sink(sim, name=f"sink{i}")
            port = OutputPort(sim, sw, sink, rate_bps=1e9, prop_delay=0.0)
            sw.add_port(port)
            sinks.append(sink)
        return sw, sinks

    def test_single_route_forwarding(self):
        sim = Simulator()
        sw, sinks = self._switch_with_ports(sim, 2)
        sw.set_route("sink", [1])
        sw.receive(_pkt())
        sim.run()
        assert len(sinks[1].received) == 1
        assert sinks[0].received == []

    def test_flow_pinning(self):
        """All packets of one flow take the same ECMP member."""
        sim = Simulator()
        sw, sinks = self._switch_with_ports(sim, 4)
        sw.set_route("sink", [0, 1, 2, 3])
        for _ in range(10):
            sw.receive(_pkt(flow_id=42))
        sim.run()
        used = [i for i, s in enumerate(sinks) if s.received]
        assert len(used) == 1
        assert len(sinks[used[0]].received) == 10

    def test_flows_spread_across_members(self):
        sim = Simulator()
        sw, sinks = self._switch_with_ports(sim, 4)
        sw.set_route("sink", [0, 1, 2, 3])
        for fid in range(200):
            sw.receive(_pkt(flow_id=fid))
        sim.run()
        counts = np.array([len(s.received) for s in sinks])
        assert np.all(counts > 20)   # roughly uniform

    def test_down_member_excluded(self):
        sim = Simulator()
        sw, sinks = self._switch_with_ports(sim, 2)
        sw.set_route("sink", [0, 1])
        sw.ports[0].set_up(False)
        for fid in range(20):
            sw.receive(_pkt(flow_id=fid))
        sim.run()
        assert sinks[0].received == []
        assert len(sinks[1].received) == 20

    def test_no_route_counts_drop(self):
        sim = Simulator()
        sw, _ = self._switch_with_ports(sim, 1)
        sw.receive(_pkt(dst="unknown"))
        assert sw.routing_drops == 1

    def test_all_members_down_counts_drop(self):
        sim = Simulator()
        sw, _ = self._switch_with_ports(sim, 1)
        sw.set_route("sink", [0])
        sw.ports[0].set_up(False)
        sw.receive(_pkt())
        assert sw.routing_drops == 1

    def test_set_ecn_all_and_current(self):
        sim = Simulator()
        sw = SwitchNode("sw")
        sink = Sink(sim)
        for _ in range(2):
            marker = ECNMarker(ECNConfig(1000, 2000, 0.5))
            sw.add_port(OutputPort(sim, sw, sink, 1e9, 0.0, marker=marker))
        cfg = ECNConfig(10, 20, 1.0)
        sw.set_ecn_all(cfg)
        assert sw.current_ecn() == cfg
        assert all(p.marker.config == cfg for p in sw.ports)

    def test_route_validation(self):
        sw = SwitchNode("sw")
        with pytest.raises(ValueError):
            sw.set_route("x", [])
        with pytest.raises(IndexError):
            sw.set_route("x", [3])

    def test_aggregate_capacity_excludes_down(self):
        sim = Simulator()
        sw, _ = self._switch_with_ports(sim, 2)
        assert sw.aggregate_capacity_bps() == pytest.approx(2e9)
        sw.ports[0].set_up(False)
        assert sw.aggregate_capacity_bps() == pytest.approx(1e9)
