"""Edge-case tests across modules (paths not covered elsewhere)."""

import numpy as np
import pytest

from repro.core.config import PETConfig
from repro.core.pet import PETController
from repro.netsim.ecn import ECNConfig
from repro.netsim.engine import Simulator
from repro.netsim.flow import Flow
from repro.netsim.fluid import FluidConfig, FluidNetwork
from repro.netsim.link import OutputPort
from repro.netsim.network import PacketNetwork
from repro.netsim.topology import TopologyConfig
from repro.traffic.patterns import PatternSchedule, PatternSegment


class _Sink:
    name = "sink"

    def receive(self, pkt):
        pass


class TestOutputPortMisc:
    def test_int_disabled_does_not_append(self):
        from repro.netsim.packet import Packet
        sim = Simulator()
        port = OutputPort(sim, "A", _Sink(), rate_bps=1e9, prop_delay=0.0,
                          int_enabled=False)
        p = Packet(flow_id=1, src="a", dst="sink", size_bytes=100)
        p.int_records = []
        port.send(p)
        sim.run()
        assert p.int_records == []

    def test_utilization_capacity_bytes_per_second(self):
        sim = Simulator()
        port = OutputPort(sim, "A", _Sink(), rate_bps=8e9, prop_delay=0.0)
        assert port.utilization_capacity() == pytest.approx(1e9)

    def test_set_ecn_without_marker_raises(self):
        sim = Simulator()
        port = OutputPort(sim, "A", _Sink(), rate_bps=1e9, prop_delay=0.0)
        with pytest.raises(RuntimeError):
            port.set_ecn(ECNConfig(1, 2, 0.5))

    def test_default_port_name(self):
        sim = Simulator()
        port = OutputPort(sim, "A", _Sink(), rate_bps=1e9, prop_delay=0.0)
        assert "A" in port.name and "sink" in port.name


class TestPacketNetworkNCMHelpers:
    def _net(self):
        return PacketNetwork(TopologyConfig(n_spine=1, n_leaf=2,
                                            hosts_per_leaf=2,
                                            host_rate_bps=1e8,
                                            spine_rate_bps=4e8), seed=0)

    def test_prune_flow_observations(self):
        net = self._net()
        net.start_flow(Flow(1, "h0", "h2", 30_000))
        net.advance(0.05)
        assert net.flow_observation_memory() > 0
        pruned = net.prune_flow_observations(older_than=net.now + 1.0)
        assert pruned > 0
        assert net.flow_observation_memory() == 0

    def test_prune_keeps_fresh_observations(self):
        net = self._net()
        net.start_flow(Flow(1, "h0", "h2", 500_000))
        net.advance(0.005)
        before = net.flow_observation_memory()
        net.prune_flow_observations(older_than=0.0)   # nothing is older
        assert net.flow_observation_memory() == before

    def test_active_flow_count(self):
        net = self._net()
        net.start_flow(Flow(1, "h0", "h2", 10_000_000))
        net.advance(0.001)
        assert net.active_flow_count() == 1
        net.advance(5.0)
        assert net.active_flow_count() == 0


class TestFluidRoutingMisc:
    def test_intra_leaf_path_has_single_hop(self):
        net = FluidNetwork(FluidConfig(n_spine=2, n_leaf=2, hosts_per_leaf=4,
                                       host_rate_bps=10e9,
                                       spine_rate_bps=40e9), seed=0)
        net.start_flow(Flow(1, "h0", "h1", 1_000_000))
        net.advance(net.config.step_dt)
        idx = net._fid_to_idx[1]
        path = net.f_path[idx]
        assert (path >= 0).sum() == 1
        assert net.f_spine[idx] == -1

    def test_cross_leaf_path_has_three_hops(self):
        net = FluidNetwork(FluidConfig(n_spine=2, n_leaf=2, hosts_per_leaf=4,
                                       host_rate_bps=10e9,
                                       spine_rate_bps=40e9), seed=0)
        net.start_flow(Flow(1, "h0", "h4", 1_000_000))
        net.advance(net.config.step_dt)
        idx = net._fid_to_idx[1]
        assert (net.f_path[idx] >= 0).sum() == 3
        assert net.f_spine[idx] >= 0

    def test_host_index_accepts_ints(self):
        assert FluidNetwork._host_index(5) == 5
        assert FluidNetwork._host_index("h7") == 7


class TestPatternScheduleMisc:
    def test_workload_at_outside_schedule_is_none(self):
        sched = PatternSchedule([PatternSegment("websearch", 1.0, 2.0, 0.5)])
        assert sched.workload_at(0.5) is None
        assert sched.workload_at(3.5) is None
        assert sched.workload_at(1.5) == "websearch"

    def test_total_duration(self):
        sched = PatternSchedule([
            PatternSegment("websearch", 0.0, 1.0, 0.5),
            PatternSegment("datamining", 1.0, 2.5, 0.5)])
        assert sched.total_duration() == pytest.approx(3.5)

    def test_empty_schedule_rejected(self):
        with pytest.raises(ValueError):
            PatternSchedule([])


class TestPETControllerMisc:
    def test_mean_recent_reward_empty_is_zero(self):
        pet = PETController(["leaf0"], PETConfig(seed=0))
        assert pet.mean_recent_reward("leaf0") == 0.0

    def test_reset_episode_clears_history_and_pending(self):
        net = FluidNetwork(FluidConfig(n_spine=1, n_leaf=2, hosts_per_leaf=2,
                                       host_rate_bps=10e9,
                                       spine_rate_bps=40e9), seed=0)
        pet = PETController(net.switch_names(), PETConfig(seed=0))
        net.advance(1e-3)
        pet.decide(net.queue_stats(), net.now, net)
        assert pet._pending
        pet.reset_episode()
        assert not pet._pending
        assert all(len(w) == 0 for w in pet.history.values())

    def test_decide_tolerates_missing_switch_stats(self):
        pet = PETController(["leaf0", "leaf1"], PETConfig(seed=0))

        class Net:
            def set_ecn(self, s, c):
                pass

        net = FluidNetwork(FluidConfig(n_spine=1, n_leaf=2, hosts_per_leaf=2,
                                       host_rate_bps=10e9,
                                       spine_rate_bps=40e9), seed=0)
        net.advance(1e-3)
        stats = net.queue_stats()
        partial = {"leaf0": stats["leaf0"]}   # leaf1 missing this interval
        applied = pet.decide(partial, net.now, net)
        assert set(applied) == {"leaf0"}


class TestDCQCNAlphaTimer:
    def test_alpha_decays_without_cnps(self):
        net = PacketNetwork(TopologyConfig(n_spine=1, n_leaf=2,
                                           hosts_per_leaf=2,
                                           host_rate_bps=1e8,
                                           spine_rate_bps=4e8), seed=0)
        # thresholds so deep nothing ever marks
        net.set_ecn_all(ECNConfig(50_000_000, 90_000_000, 0.01))
        f = Flow(1, "h0", "h2", 5_000_000)
        net.start_flow(f)
        net.advance(0.01)
        t = net.topology.host(0).transport
        cc = t.senders[1].extra["cc"]
        assert cc.alpha < 1.0      # started at 1.0, decayed by the timer


class TestEngineBoundary:
    def test_schedule_at_now_is_allowed(self):
        sim = Simulator()
        hits = []
        sim.schedule(1.0, lambda: sim.schedule_at(sim.now, hits.append, 1))
        sim.run()
        assert hits == [1]
