"""Tests for the multi-queue adaptation (paper §4.5.2)."""

import numpy as np
import pytest

from repro.core.config import PETConfig
from repro.core.multiqueue import MultiQueuePETController
from repro.netsim.ecn import ECNConfig
from repro.netsim.flow import Flow
from repro.netsim.fluid import FluidConfig, FluidNetwork
from repro.netsim.network import PacketNetwork
from repro.netsim.topology import TopologyConfig


def fluid_net(seed=0):
    return FluidNetwork(FluidConfig(n_spine=1, n_leaf=2, hosts_per_leaf=2,
                                    host_rate_bps=10e9,
                                    spine_rate_bps=40e9), seed=seed)


def packet_net(seed=0):
    return PacketNetwork(TopologyConfig(n_spine=1, n_leaf=2, hosts_per_leaf=2,
                                        host_rate_bps=1e8,
                                        spine_rate_bps=4e8), seed=seed)


class TestPerPortInterfaces:
    def test_fluid_port_stats_cover_all_queues(self):
        net = fluid_net()
        net.advance(1e-3)
        ps = net.port_stats()
        # every (switch, local idx) with n_queues == 1
        total = sum(len(net.switch_queue_indices(s))
                    for s in net.switch_names())
        assert len(ps) == total
        assert all(st.n_queues == 1 for st in ps.values())

    def test_fluid_set_ecn_port_targets_one_queue(self):
        net = fluid_net()
        cfg = ECNConfig(123, 456, 0.5)
        net.set_ecn_port("leaf0", 0, cfg)
        qs = net.switch_queue_indices("leaf0")
        assert net.kmax[qs[0]] == 456
        assert net.kmax[qs[1]] != 456

    def test_packet_port_stats_cover_all_ports(self):
        net = packet_net()
        net.start_flow(Flow(1, "h0", "h2", 20_000))
        net.advance(0.05)
        ps = net.port_stats()
        total = sum(len(sw.ports) for sw in net.topology.switches())
        assert len(ps) == total
        # the flow's path ports carry its bytes
        assert any(st.tx_bytes >= 20_000 for st in ps.values())

    def test_packet_set_ecn_port(self):
        net = packet_net()
        cfg = ECNConfig(111, 222, 0.9)
        net.set_ecn_port("leaf0", 0, cfg)
        sw = net.topology.node("leaf0")
        assert sw.ports[0].marker.config == cfg
        assert sw.ports[1].marker.config != cfg

    def test_packet_set_ecn_port_rejects_host(self):
        net = packet_net()
        with pytest.raises(TypeError):
            net.set_ecn_port("h0", 0, ECNConfig(1, 2, 0.5))


class TestMultiQueueController:
    def _drive(self, ctrl, net, intervals=5, dt=1e-3):
        applied_all = {}
        for _ in range(intervals):
            net.advance(dt)
            port_stats = net.port_stats()
            switch_stats = net.queue_stats()
            applied = ctrl.decide(port_stats, switch_stats, net.now, net)
            applied_all.update(applied)
        return applied_all

    def test_per_queue_actions_applied(self):
        net = fluid_net()
        net.start_flows([Flow(i, "h0", "h2", 2_000_000) for i in range(3)])
        ctrl = MultiQueuePETController(net.switch_names(),
                                       PETConfig(seed=0, update_interval=3))
        applied = self._drive(ctrl, net)
        # every queue of every switch got its own configuration
        total = sum(len(net.switch_queue_indices(s))
                    for s in net.switch_names())
        assert len(applied) == total
        for (s, idx), cfg in applied.items():
            qs = net.switch_queue_indices(s)
            assert net.kmax[qs[idx]] == cfg.kmax_bytes

    def test_queues_can_diverge_within_a_switch(self):
        net = fluid_net()
        net.start_flows([Flow(i, "h0", "h2", 5_000_000) for i in range(3)])
        ctrl = MultiQueuePETController(net.switch_names(),
                                       PETConfig(seed=1, update_interval=100))
        applied = self._drive(ctrl, net, intervals=8)
        by_switch = {}
        for (s, idx), cfg in applied.items():
            by_switch.setdefault(s, set()).add(
                (cfg.kmax_bytes, round(cfg.pmax, 3)))
        # with a stochastic policy across many queues, at least one switch
        # ends up with heterogeneous per-queue settings
        assert any(len(v) > 1 for v in by_switch.values())

    def test_training_updates_agents(self):
        net = fluid_net()
        net.start_flows([Flow(i, "h0", "h2", 3_000_000) for i in range(2)])
        ctrl = MultiQueuePETController(net.switch_names(),
                                       PETConfig(seed=2, update_interval=2))
        self._drive(ctrl, net, intervals=5)
        assert all(a.updates >= 1 for a in ctrl.agents.values())

    def test_eval_mode_freezes_buffers(self):
        net = fluid_net()
        ctrl = MultiQueuePETController(net.switch_names(),
                                       PETConfig(seed=3, update_interval=2))
        ctrl.set_training(False)
        self._drive(ctrl, net, intervals=4)
        assert all(len(a.buffer) == 0 for a in ctrl.agents.values())
        assert all(a.updates == 0 for a in ctrl.agents.values())

    def test_checkpoint_roundtrip(self):
        net = fluid_net()
        a = MultiQueuePETController(net.switch_names(), PETConfig(seed=4))
        b = MultiQueuePETController(net.switch_names(), PETConfig(seed=5))
        b.load_state_dict(a.state_dict())
        obs = np.zeros(a.agents["leaf0"].config.obs_dim)
        np.testing.assert_allclose(a.agents["leaf0"].policy.probs(obs),
                                   b.agents["leaf0"].policy.probs(obs))

    def test_requires_switches(self):
        with pytest.raises(ValueError):
            MultiQueuePETController([])

    def test_hot_queue_gets_pressure_signal(self):
        """The congested queue's reward is lower than an idle queue's,
        so the shared model can differentiate rows of the matrix."""
        net = fluid_net()
        net.start_flows([Flow(i, f"h{i % 2}", "h2", 50_000_000)
                         for i in range(4)])
        ctrl = MultiQueuePETController(net.switch_names(),
                                       PETConfig(seed=6))
        net.advance(2e-3)
        port_stats = net.port_stats()
        hot = [st for st in port_stats.values() if st.avg_qlen_bytes > 1e4]
        cold = [st for st in port_stats.values() if st.avg_qlen_bytes < 1e2]
        assert hot and cold
        assert (ctrl.reward.compute(hot[0])
                < ctrl.reward.compute(cold[0]))
