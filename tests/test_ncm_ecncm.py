"""Tests for the Network Condition Monitor and the ECN Configuration Module."""

import pytest

from repro.core.action import ActionCodec
from repro.core.config import PETConfig
from repro.core.ecn_cm import ECNConfigModule
from repro.core.ncm import NetworkConditionMonitor
from repro.netsim.ecn import ECNConfig
from repro.netsim.network import QueueStats
from repro.netsim.queueing import FlowObservation


def mk_stats(switch="leaf0", flow_obs=None):
    return QueueStats(switch=switch, interval=1e-3, qlen_bytes=0,
                      max_port_qlen_bytes=0, avg_qlen_bytes=0, tx_bytes=0,
                      tx_marked_bytes=0, dropped_pkts=0, capacity_bps=1e9,
                      ecn=None, flow_obs=flow_obs or {})


def obs(fid, src, dst, nbytes=1000, t=0.0):
    return FlowObservation(fid, src, dst, nbytes, t)


class TestIncastDegree:
    def test_empty(self):
        assert NetworkConditionMonitor.compute_incast_degree({}) == 0

    def test_many_to_one(self):
        table = {i: obs(i, f"h{i}", "h9") for i in range(5)}
        assert NetworkConditionMonitor.compute_incast_degree(table) == 5

    def test_max_over_receivers(self):
        table = {1: obs(1, "a", "x"), 2: obs(2, "b", "x"),
                 3: obs(3, "c", "y")}
        assert NetworkConditionMonitor.compute_incast_degree(table) == 2

    def test_duplicate_senders_counted_once(self):
        table = {1: obs(1, "a", "x"), 2: obs(2, "a", "x")}
        assert NetworkConditionMonitor.compute_incast_degree(table) == 1


class TestNCMIngestAnalyze:
    def test_wrong_switch_rejected(self):
        ncm = NetworkConditionMonitor("leaf0", PETConfig())
        with pytest.raises(ValueError):
            ncm.ingest(mk_stats(switch="leaf1"), 0.0)

    def test_analysis_combines_window_slots(self):
        cfg = PETConfig(history_k=3)
        ncm = NetworkConditionMonitor("leaf0", cfg)
        a1 = ncm.ingest(mk_stats(flow_obs={1: obs(1, "a", "x")}), 1e-3)
        assert a1.incast_degree == 1
        a2 = ncm.ingest(mk_stats(flow_obs={2: obs(2, "b", "x")}), 2e-3)
        # both senders to x retained in the window
        assert a2.incast_degree == 2
        assert a2.n_flows_observed == 2

    def test_flow_ratio_from_observed_bytes(self):
        ncm = NetworkConditionMonitor("leaf0", PETConfig())
        table = {1: obs(1, "a", "x", nbytes=100),
                 2: obs(2, "b", "x", nbytes=5_000_000)}
        analysis = ncm.ingest(mk_stats(flow_obs=table), 0.0)
        assert analysis.flow_ratio == pytest.approx(0.5)

    def test_empty_observation_neutral_ratio(self):
        ncm = NetworkConditionMonitor("leaf0", PETConfig())
        analysis = ncm.ingest(mk_stats(), 0.0)
        assert analysis.flow_ratio == 0.5
        assert analysis.incast_degree == 0


class TestNCMCleanup:
    def test_scheduled_cleanup_expires_old_slots(self):
        cfg = PETConfig(history_k=2, ncm_cleanup_interval_slots=3,
                        ncm_memory_threshold_bytes=10**9)
        ncm = NetworkConditionMonitor("leaf0", cfg)
        for i in range(6):
            ncm.ingest(mk_stats(flow_obs={i: obs(i, "a", "x")}), i * 1e-3)
        assert ncm.cleanups_scheduled == 2      # at slots 3 and 6
        assert ncm.retained_slots() <= max(cfg.history_k,
                                           cfg.ncm_cleanup_interval_slots)
        assert ncm.entries_pruned > 0

    def test_threshold_cleanup_on_burst(self):
        cfg = PETConfig(history_k=8, ncm_cleanup_interval_slots=100,
                        ncm_memory_threshold_bytes=48 * 10,   # tiny budget
                        ncm_threshold_drop_fraction=0.5)
        ncm = NetworkConditionMonitor("leaf0", cfg)
        burst = {i: obs(i, f"h{i}", "agg", t=float(i)) for i in range(40)}
        ncm.ingest(mk_stats(flow_obs=burst), 0.0)
        assert ncm.cleanups_threshold >= 1
        assert ncm.memory_bytes() <= 48 * 40    # roughly half dropped
        assert ncm.entries_pruned >= 20

    def test_memory_metering(self):
        ncm = NetworkConditionMonitor("leaf0", PETConfig())
        assert ncm.memory_bytes() == 0
        ncm.ingest(mk_stats(flow_obs={1: obs(1, "a", "x")}), 0.0)
        assert ncm.memory_bytes() == 48


class DummyNetwork:
    def __init__(self):
        self.applied = []

    def set_ecn(self, switch, config):
        self.applied.append((switch, config))


class TestECNConfigModule:
    def test_apply_decodes_and_pushes(self):
        codec = ActionCodec.compact()
        mod = ECNConfigModule("leaf0", codec, min_interval=1e-3)
        net = DummyNetwork()
        out = mod.apply(3, now=0.0, network=net)
        assert out == codec.decode(3)
        assert net.applied == [("leaf0", out)]
        assert mod.applied == 1

    def test_rate_limit_suppresses_fast_retuning(self):
        codec = ActionCodec.compact()
        mod = ECNConfigModule("leaf0", codec, min_interval=1e-3)
        net = DummyNetwork()
        mod.apply(0, now=0.0, network=net)
        assert mod.apply(1, now=0.5e-3, network=net) is None
        assert mod.suppressed == 1
        assert mod.apply(1, now=1.1e-3, network=net) is not None

    def test_exact_interval_allowed(self):
        codec = ActionCodec.compact()
        mod = ECNConfigModule("leaf0", codec, min_interval=1e-3)
        net = DummyNetwork()
        mod.apply(0, now=0.0, network=net)
        assert mod.apply(1, now=1e-3, network=net) is not None

    def test_force_bypasses_rate_limit(self):
        codec = ActionCodec.compact()
        mod = ECNConfigModule("leaf0", codec, min_interval=1.0)
        net = DummyNetwork()
        mod.apply(0, now=0.0, network=net)
        mod.force(ECNConfig(1, 2, 0.5), now=0.1, network=net)
        assert mod.current == ECNConfig(1, 2, 0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            ECNConfigModule("leaf0", ActionCodec.compact(), min_interval=-1)


class TestThresholdSweepSlotHygiene:
    """Regression: the threshold sweep used to leave emptied _SlotRecords
    in the slot list, inflating the window the periodic sweep keys off
    and growing memory without bound under bursty incast."""

    def _bursty_ncm(self):
        cfg = PETConfig(history_k=4, ncm_cleanup_interval_slots=10**6,
                        ncm_memory_threshold_bytes=48 * 2,    # ~2 entries
                        ncm_threshold_drop_fraction=0.5)
        return NetworkConditionMonitor("leaf0", cfg)

    def test_sweep_drops_emptied_slots(self):
        ncm = self._bursty_ncm()
        for i in range(6):
            ncm.ingest(mk_stats(flow_obs={i: obs(i, "a", "x", t=i * 1e-3)}),
                       i * 1e-3)
        assert ncm.cleanups_threshold >= 1
        assert all(s.flow_obs for s in ncm._slots)    # no empty husks

    def test_slot_count_stays_bounded_under_burst(self):
        ncm = self._bursty_ncm()
        for i in range(50):
            ncm.ingest(mk_stats(flow_obs={i: obs(i, "a", "x", t=i * 1e-3)}),
                       i * 1e-3)
        # pre-fix the list grew ~one emptied slot per sweep; post-fix the
        # retained slots are exactly the data-bearing ones
        assert ncm.retained_slots() <= 3
        assert all(s.flow_obs for s in ncm._slots)

    def test_memory_gauges_emitted_when_enabled(self):
        import repro.obs as obs_mod
        with obs_mod.telemetry() as (reg, _):
            ncm = NetworkConditionMonitor("leaf0", PETConfig())
            ncm.ingest(mk_stats(flow_obs={1: obs(1, "a", "x")}), 0.0)
            assert reg.gauge_value("ncm.memory_bytes", switch="leaf0") == 48.0
            assert reg.gauge_value("ncm.retained_slots", switch="leaf0") == 1.0
