"""Tests for the NumPy neural-network layers, including gradient checks."""

import numpy as np
import pytest

from repro.rl.nn import MLP, Linear, ReLU, Tanh, clip_gradients


def numerical_grad(f, x, eps=1e-6):
    """Central-difference gradient of scalar f at array x."""
    g = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        i = it.multi_index
        old = x[i]
        x[i] = old + eps
        hi = f()
        x[i] = old - eps
        lo = f()
        x[i] = old
        g[i] = (hi - lo) / (2 * eps)
        it.iternext()
    return g


class TestLinear:
    def test_forward_shape(self):
        layer = Linear(3, 5, rng=np.random.default_rng(0))
        out = layer.forward(np.ones((4, 3)))
        assert out.shape == (4, 5)

    def test_forward_matches_matmul(self):
        rng = np.random.default_rng(1)
        layer = Linear(3, 2, rng=rng)
        x = rng.normal(size=(5, 3))
        np.testing.assert_allclose(layer.forward(x), x @ layer.W + layer.b)

    def test_backward_gradcheck(self):
        rng = np.random.default_rng(2)
        layer = Linear(4, 3, rng=rng)
        x = rng.normal(size=(6, 4))
        target = rng.normal(size=(6, 3))

        def loss():
            return 0.5 * np.sum((layer.forward(x) - target) ** 2)

        out = layer.forward(x)
        layer.zero_grad()
        grad_in = layer.backward(out - target)
        num_W = numerical_grad(loss, layer.W)
        num_b = numerical_grad(loss, layer.b)
        np.testing.assert_allclose(layer.dW, num_W, atol=1e-5)
        np.testing.assert_allclose(layer.db, num_b, atol=1e-5)
        num_x = numerical_grad(loss, x)
        np.testing.assert_allclose(grad_in, num_x, atol=1e-5)

    def test_backward_before_forward_raises(self):
        layer = Linear(2, 2)
        with pytest.raises(RuntimeError):
            layer.backward(np.ones((1, 2)))

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            Linear(0, 3)


class TestActivations:
    @pytest.mark.parametrize("act_cls,fn", [(Tanh, np.tanh),
                                            (ReLU, lambda x: np.maximum(x, 0))])
    def test_forward(self, act_cls, fn):
        act = act_cls()
        x = np.linspace(-2, 2, 11).reshape(1, -1)
        np.testing.assert_allclose(act.forward(x), fn(x))

    def test_tanh_gradcheck(self):
        act = Tanh()
        x = np.random.default_rng(3).normal(size=(2, 5))

        def loss():
            return np.sum(act.forward(x) ** 2)

        y = act.forward(x)
        grad = act.backward(2 * y)
        np.testing.assert_allclose(grad, numerical_grad(loss, x), atol=1e-6)

    def test_relu_grad_zero_for_negative(self):
        act = ReLU()
        x = np.array([[-1.0, 2.0]])
        act.forward(x)
        g = act.backward(np.ones_like(x))
        np.testing.assert_allclose(g, [[0.0, 1.0]])


class TestMLP:
    def test_shapes_and_param_count(self):
        net = MLP([4, 8, 3], rng=np.random.default_rng(0))
        assert net.forward(np.ones((2, 4))).shape == (2, 3)
        assert net.num_parameters() == 4 * 8 + 8 + 8 * 3 + 3

    def test_full_gradcheck(self):
        rng = np.random.default_rng(4)
        net = MLP([3, 6, 2], rng=rng)
        x = rng.normal(size=(4, 3))
        t = rng.normal(size=(4, 2))

        def loss():
            return 0.5 * np.sum((net.forward(x) - t) ** 2)

        out = net.forward(x)
        net.zero_grad()
        net.backward(out - t)
        for name, p in net.parameters().items():
            num = numerical_grad(loss, p)
            np.testing.assert_allclose(net.gradients()[name], num, atol=1e-5,
                                       err_msg=name)

    def test_grad_accumulation_and_zero(self):
        net = MLP([2, 4, 1], rng=np.random.default_rng(5))
        x = np.ones((1, 2))
        net.forward(x)
        net.backward(np.ones((1, 1)))
        g1 = {k: v.copy() for k, v in net.gradients().items()}
        net.forward(x)
        net.backward(np.ones((1, 1)))
        for k, g in net.gradients().items():
            np.testing.assert_allclose(g, 2 * g1[k])
        net.zero_grad()
        assert all(np.all(g == 0) for g in net.gradients().values())

    def test_state_dict_roundtrip(self):
        a = MLP([3, 5, 2], rng=np.random.default_rng(6))
        b = MLP([3, 5, 2], rng=np.random.default_rng(7))
        x = np.random.default_rng(8).normal(size=(2, 3))
        assert not np.allclose(a.forward(x), b.forward(x))
        b.load_state_dict(a.state_dict())
        np.testing.assert_allclose(a.forward(x), b.forward(x))

    def test_state_dict_shape_mismatch_rejected(self):
        a = MLP([3, 5, 2])
        b = MLP([3, 4, 2])
        with pytest.raises(ValueError):
            b.load_state_dict(a.state_dict())

    def test_out_scale_shrinks_head(self):
        big = MLP([4, 8, 3], out_scale=1.0, rng=np.random.default_rng(9))
        small = MLP([4, 8, 3], out_scale=0.01, rng=np.random.default_rng(9))
        last_big = [l for l in big.layers if isinstance(l, Linear)][-1]
        last_small = [l for l in small.layers if isinstance(l, Linear)][-1]
        assert np.abs(last_small.W).max() < np.abs(last_big.W).max() / 10

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            MLP([4])
        with pytest.raises(ValueError):
            MLP([4, 2], activation="sigmoid")


class TestClipGradients:
    def test_noop_below_norm(self):
        g = [np.array([3.0, 4.0])]
        norm = clip_gradients(g, max_norm=10.0)
        assert norm == pytest.approx(5.0)
        np.testing.assert_allclose(g[0], [3.0, 4.0])

    def test_scales_above_norm(self):
        g = [np.array([3.0, 4.0])]
        clip_gradients(g, max_norm=1.0)
        assert np.linalg.norm(g[0]) == pytest.approx(1.0)

    def test_zero_max_norm_disables(self):
        g = [np.array([30.0, 40.0])]
        clip_gradients(g, max_norm=0.0)
        np.testing.assert_allclose(g[0], [30.0, 40.0])
