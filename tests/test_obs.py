"""Tests for the telemetry subsystem (repro.obs): registry, tracer,
exporters, profiling hooks, and the engine's per-task metric merge."""

import json

import numpy as np
import pytest

import repro.obs as obs
from repro.obs.export import OBS_SCHEMA, read_jsonl, write_csv, write_jsonl
from repro.obs.metrics import (MetricsRegistry, NullRegistry, get_registry)
from repro.obs.profile import (HOT_PATH_SPANS, hot_path_attribution,
                               profile_table, profiled)
from repro.obs.trace import NullTracer, Tracer, get_tracer


@pytest.fixture(autouse=True)
def _null_telemetry():
    """Every test starts and ends with the null defaults installed."""
    obs.disable()
    yield
    obs.disable()


class TestMetricsRegistry:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.inc("loop.intervals")
        reg.inc("loop.intervals", 2)
        assert reg.counter_value("loop.intervals") == 3.0

    def test_labels_separate_series(self):
        reg = MetricsRegistry()
        reg.inc("netsim.steps", 5, sim="fluid")
        reg.inc("netsim.steps", 7, sim="packet")
        assert reg.counter_value("netsim.steps", sim="fluid") == 5.0
        assert reg.counter_value("netsim.steps", sim="packet") == 7.0
        assert reg.counter_value("netsim.steps") == 0.0

    def test_label_order_is_canonical(self):
        reg = MetricsRegistry()
        reg.inc("x", a=1, b=2)
        reg.inc("x", b=2, a=1)
        assert reg.counter_value("x", b=2, a=1) == 2.0

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.set_gauge("ncm.memory_bytes", 100, switch="leaf0")
        reg.set_gauge("ncm.memory_bytes", 40, switch="leaf0")
        assert reg.gauge_value("ncm.memory_bytes", switch="leaf0") == 40.0
        assert reg.gauge_value("ncm.memory_bytes", switch="leaf1") is None

    def test_histogram_summary_stats(self):
        reg = MetricsRegistry()
        for v in (1.0, 2.0, 3.0):
            reg.observe("pet.reward", v)
        stat = reg.histogram_stat("pet.reward")
        assert stat.count == 3
        assert stat.mean == pytest.approx(2.0)
        assert stat.minimum == 1.0 and stat.maximum == 3.0
        assert stat.std == pytest.approx(np.std([1.0, 2.0, 3.0]))

    def test_histogram_recent_tail_bounded(self):
        reg = MetricsRegistry()
        for i in range(500):
            reg.observe("x", float(i))
        stat = reg.histogram_stat("x")
        assert len(stat.recent) == stat.recent_cap
        assert stat.count == 500                  # summary still exact
        assert stat.recent[-1] == 499.0

    def test_summary_renders_labels(self):
        reg = MetricsRegistry()
        reg.inc("faults", kind="link-down")
        reg.set_gauge("g", 1.0)
        reg.observe("h", 2.0)
        summ = reg.summary()
        assert summ["faults{kind=link-down}"]["value"] == 1.0
        assert summ["g"]["type"] == "gauge"
        assert summ["h"]["type"] == "histogram"

    def test_snapshot_merge_roundtrip(self):
        a = MetricsRegistry()
        a.inc("c", 3, sim="fluid")
        a.set_gauge("g", 9)
        a.observe("h", 1.0)
        a.observe("h", 3.0)
        b = MetricsRegistry()
        b.inc("c", 1, sim="fluid")
        b.merge(a.snapshot())
        assert b.counter_value("c", sim="fluid") == 4.0
        assert b.gauge_value("g") == 9.0
        assert b.histogram_stat("h").count == 2
        assert b.histogram_stat("h").mean == pytest.approx(2.0)

    def test_merge_extra_labels(self):
        a = MetricsRegistry()
        a.inc("loop.intervals", 20)
        b = MetricsRegistry()
        b.merge(a.snapshot(), extra_labels={"task": 3})
        assert b.counter_value("loop.intervals", task=3) == 20.0
        assert b.counter_value("loop.intervals") == 0.0

    def test_snapshot_is_picklable(self):
        import pickle
        a = MetricsRegistry()
        a.inc("c", 2, k="v")
        a.observe("h", 1.5)
        snap = pickle.loads(pickle.dumps(a.snapshot()))
        b = MetricsRegistry()
        b.merge(snap)
        assert b.counter_value("c", k="v") == 2.0

    def test_clear(self):
        reg = MetricsRegistry()
        reg.inc("c")
        reg.clear()
        assert reg.series_names() == []


class TestNullObjects:
    def test_null_registry_is_falsy_noop(self):
        reg = NullRegistry()
        assert not reg
        reg.inc("c")
        reg.set_gauge("g", 1.0)
        reg.observe("h", 1.0)
        reg.merge({"counters": [(("c", ()), 5.0)]})
        assert reg.counter_value("c") == 0.0
        assert reg.series_names() == []

    def test_null_tracer_is_falsy_noop(self):
        tr = NullTracer()
        assert not tr
        with tr.span("loop.tick", interval=0):
            tr.event("fault.link-down")
        assert len(tr) == 0

    def test_defaults_are_null(self):
        assert not get_registry()
        assert not get_tracer()
        assert not obs.enabled()

    def test_enable_disable_roundtrip(self):
        reg, tr = obs.enable()
        assert get_registry() is reg and get_tracer() is tr
        assert obs.enabled()
        obs.disable()
        assert not obs.enabled()

    def test_telemetry_context_restores_null(self):
        with obs.telemetry() as (reg, tr):
            reg.inc("c")
            assert obs.enabled()
        assert not obs.enabled()

    def test_telemetry_context_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with obs.telemetry():
                raise RuntimeError("boom")
        assert not obs.enabled()


class TestTracer:
    def test_span_records_duration(self):
        tr = Tracer()
        with tr.span("net.advance", interval=2) as sp:
            pass
        assert sp.duration_s >= 0.0
        assert sp.kind == "span"
        assert sp.attrs == {"interval": 2}
        assert tr.by_name("net.advance") == [sp]

    def test_event_is_instantaneous(self):
        tr = Tracer()
        tr.event("fault.link-down", switch="leaf0")
        (ev,) = tr.spans
        assert ev.kind == "event" and ev.duration_s == 0.0

    def test_seq_monotonic(self):
        tr = Tracer()
        for _ in range(3):
            with tr.span("x"):
                pass
        assert [s.seq for s in tr.spans] == [0, 1, 2]

    def test_max_spans_drops_and_counts(self):
        tr = Tracer(max_spans=2)
        for _ in range(5):
            tr.event("e")
        assert len(tr) == 2 and tr.dropped == 3

    def test_total_duration_and_names(self):
        tr = Tracer()
        with tr.span("a"):
            pass
        tr.event("b")
        assert tr.names() == ["a", "b"]
        assert tr.total_duration_s("a") >= 0.0


class TestExporters:
    def test_jsonl_roundtrip(self, tmp_path):
        tr = Tracer()
        reg = MetricsRegistry()
        with tr.span("loop.tick", interval=0):
            tr.event("ecn.reconfig", switch="leaf0")
        reg.inc("loop.intervals")
        reg.observe("pet.reward", 0.5, switch="leaf0")
        path = str(tmp_path / "trace.jsonl")
        lines = write_jsonl(path, tr, reg, meta={"scenario": "websearch"})
        meta, spans, metrics = read_jsonl(path)
        assert meta["schema"] == OBS_SCHEMA
        assert meta["scenario"] == "websearch"
        assert meta["spans"] == 2
        assert lines == 1 + 2 + len(reg.summary())
        assert [s.name for s in spans] == ["loop.tick", "ecn.reconfig"]
        assert spans[0].kind == "span" and spans[1].kind == "event"
        assert spans[0].attrs == {"interval": 0}
        assert metrics["loop.intervals"]["value"] == 1.0
        assert metrics["pet.reward{switch=leaf0}"]["count"] == 1

    def test_jsonl_lines_are_valid_json(self, tmp_path):
        tr = Tracer()
        tr.event("e", k=1)
        path = str(tmp_path / "t.jsonl")
        write_jsonl(path, tr, None)
        with open(path) as f:
            recs = [json.loads(line) for line in f]
        assert recs[0]["type"] == "meta"
        assert recs[1]["type"] == "event"

    def test_csv_export(self, tmp_path):
        tr = Tracer()
        with tr.span("a", x=1):
            pass
        path = str(tmp_path / "t.csv")
        assert write_csv(path, tr.spans) == 2
        lines = open(path).read().strip().splitlines()
        assert lines[0].startswith("seq,type,name")
        assert ",a," in lines[1]


class TestProfiling:
    def test_profiled_collects_stats(self):
        with profiled() as prof:
            sum(range(1000))
        table = profile_table(prof, limit=5)
        assert isinstance(table, str) and table

    def test_hot_path_attribution(self):
        tr = Tracer()
        for _ in range(3):
            with tr.span("net.advance"):
                pass
        tr.event("fault.link-down")          # events excluded
        attr = hot_path_attribution(tr)
        assert attr["net.advance"]["count"] == 3
        assert attr["net.advance"]["total_s"] >= 0.0
        assert "fault.link-down" not in attr
        assert "net.advance" in HOT_PATH_SPANS


class TestEngineMetricMerge:
    def test_serial_tasks_merge_with_task_labels(self):
        from repro.parallel.engine import Engine, TaskSpec

        reg, tr = obs.enable()
        rep = Engine(workers=1).run([
            TaskSpec(task_id=0, fn=_task_body, args=(4,)),
            TaskSpec(task_id=1, fn=_task_body, args=(7,)),
        ])
        assert rep.values() == [4, 7]
        assert reg.counter_value("task.work", task=0) == 4.0
        assert reg.counter_value("task.work", task=1) == 7.0
        assert reg.counter_value("engine.tasks") == 2.0
        assert reg.histogram_stat("engine.task_s").count == 2
        assert len(tr.by_name("engine.run")) == 1

    def test_outcome_carries_snapshot_when_enabled(self):
        from repro.parallel.engine import Engine, TaskSpec

        obs.enable()
        rep = Engine(workers=1).run(
            [TaskSpec(task_id=0, fn=_task_body, args=(2,))])
        assert rep.outcomes[0].metrics is not None

    def test_outcome_snapshot_none_when_disabled(self):
        from repro.parallel.engine import Engine, TaskSpec

        rep = Engine(workers=1).run(
            [TaskSpec(task_id=0, fn=_task_body, args=(2,))])
        assert rep.outcomes[0].metrics is None

    def test_task_registry_isolated_from_parent(self):
        """Task-side writes must not leak directly into the parent
        registry — they arrive only via the labelled merge."""
        from repro.parallel.engine import Engine, TaskSpec

        reg, _ = obs.enable()
        Engine(workers=1).run([TaskSpec(task_id=0, fn=_task_body, args=(3,))])
        assert reg.counter_value("task.work") == 0.0      # unlabelled: absent
        assert reg.counter_value("task.work", task=0) == 3.0


def _task_body(n: int) -> int:
    """Module-level (picklable) engine task that emits metrics."""
    get_registry().inc("task.work", n)
    return n


class TestFaultEventsOnBus:
    def test_fault_log_publishes_event_and_counter(self):
        from repro.resilience.log import FaultLog

        reg, tr = obs.enable()
        log = FaultLog()
        log.record(0.5, "link-down", switch="leaf0", detail={"ports": 2})
        (ev,) = tr.by_name("fault.link-down")
        assert ev.kind == "event"
        assert ev.attrs["switch"] == "leaf0"
        assert reg.counter_value("faults", kind="link-down") == 1.0

    def test_fault_log_unchanged_when_disabled(self):
        from repro.resilience.log import FaultLog

        log = FaultLog()
        log.record(0.1, "quarantine", switch="s0")
        assert len(log) == 1
        assert log.events[0].kind == "quarantine"
