"""End-to-end telemetry contracts.

Two acceptance properties of the observability PR:

1. ``python -m repro trace`` produces a JSONL trace whose spans cover
   every instrumented layer — control loop, simulator, PET pipeline,
   RL update, fault events — plus the metrics summary.
2. Telemetry is *zero-overhead when disabled*: a pretraining run is
   bit-identical (perfbench fingerprint) whether it executes before,
   during, or after an enabled-telemetry run.
"""

from functools import partial

import pytest

import repro.obs as obs
from repro.core.training import pretrain_one_seed
from repro.obs.cli import trace_main
from repro.obs.export import OBS_SCHEMA, read_jsonl
from repro.parallel.perfbench import _bench_train_network, _fingerprint


@pytest.fixture(autouse=True)
def _null_telemetry():
    obs.disable()
    yield
    obs.disable()


class TestTraceCLI:
    def test_trace_smoke_covers_all_layers(self, tmp_path):
        out = str(tmp_path / "trace.jsonl")
        csv = str(tmp_path / "trace.csv")
        rc = trace_main(["--scenario", "websearch", "--seed", "0",
                         "--duration", "0.05", "--out", out, "--csv", csv])
        assert rc == 0

        meta, spans, metrics = read_jsonl(out)
        assert meta["schema"] == OBS_SCHEMA
        assert meta["scheme"] == "pet" and meta["chaos"] is True

        names = {s.name for s in spans}
        # control loop + simulator + PET pipeline + RL update all covered
        assert {"loop.tick", "net.advance", "net.queue_stats",
                "controller.decide", "pet.ingest", "pet.act",
                "ppo.update"} <= names
        # chaos faults ride the same bus as events
        assert any(n.startswith("fault.") for n in names)
        assert any(s.name == "ecn.reconfig" and s.kind == "event"
                   for s in spans)

        assert metrics["loop.intervals"]["value"] == meta["intervals"]
        assert metrics["netsim.advance_calls{sim=fluid}"]["value"] > 0
        assert metrics["pet.decide_intervals"]["value"] > 0
        assert metrics["ppo.updates"]["value"] > 0
        assert any(series.startswith("faults{") for series in metrics)

        with open(csv) as f:
            assert f.readline().startswith("seq,type,name")
        # the CLI must hand back the null defaults when it is done
        assert not obs.enabled()

    def test_no_chaos_run_has_no_fault_events(self, tmp_path):
        out = str(tmp_path / "trace.jsonl")
        rc = trace_main(["--scheme", "secn1", "--duration", "0.01",
                         "--no-chaos", "--out", out])
        assert rc == 0
        _, spans, _ = read_jsonl(out)
        assert not any(s.name.startswith("fault.") for s in spans)
        assert any(s.name == "loop.tick" for s in spans)


def _tiny_pretrain():
    """A short, seeded offline pretraining run (the acceptance workload)."""
    make = partial(_bench_train_network, duration=0.03, load=0.4)
    return pretrain_one_seed(make, None, seed=3, episodes=1,
                             intervals_per_episode=30)


class TestZeroOverheadWhenDisabled:
    def test_pretrain_fingerprint_unaffected_by_telemetry(self):
        """The overhead guard: enabling the full bus must not perturb a
        single bit of the training result — telemetry never touches an
        RNG stream or a control-flow decision."""
        baseline = _fingerprint(_tiny_pretrain())
        with obs.telemetry() as (reg, tracer):
            traced = _fingerprint(_tiny_pretrain())
            # the instrumented layers really did collect during the run
            assert reg.counter_value("loop.intervals") > 0
            assert reg.counter_value("netsim.advance_calls", sim="fluid") > 0
            assert len(tracer.by_name("loop.tick")) > 0
        after = _fingerprint(_tiny_pretrain())
        assert baseline == traced
        assert baseline == after
