"""Tests for Adam/SGD optimizers."""

import numpy as np
import pytest

from repro.rl.nn import MLP
from repro.rl.optim import Adam, SGD


def _train_quadratic(opt_cls, steps=300, **kwargs):
    """Minimize ||net(x) - t||^2 on a fixed batch; return final loss."""
    rng = np.random.default_rng(0)
    net = MLP([2, 8, 1], rng=rng)
    x = rng.normal(size=(16, 2))
    t = (x[:, :1] * 0.5 - x[:, 1:] * 0.25)
    opt = opt_cls(net, **kwargs)
    loss = None
    for _ in range(steps):
        out = net.forward(x)
        loss = float(np.mean((out - t) ** 2))
        net.zero_grad()
        net.backward(2 * (out - t) / len(x))
        opt.step()
    return loss


def test_sgd_descends():
    assert _train_quadratic(SGD, lr=0.05) < 0.01


def test_sgd_momentum_descends():
    assert _train_quadratic(SGD, lr=0.02, momentum=0.9) < 0.01


def test_adam_descends_fast():
    assert _train_quadratic(Adam, steps=150, lr=0.01) < 0.005


def test_adam_bias_correction_first_step():
    """With bias correction the first Adam step is ~lr * sign(grad)."""
    net = MLP([1, 1], rng=np.random.default_rng(1))
    w_before = net.parameters()["layer0.W"].copy()
    out = net.forward(np.array([[1.0]]))
    net.zero_grad()
    net.backward(np.array([[1.0]]))
    Adam(net, lr=0.1).step()
    w_after = net.parameters()["layer0.W"]
    assert abs(float(np.abs(w_after - w_before).ravel()[0]) - 0.1) < 1e-6


def test_invalid_hyperparams():
    net = MLP([2, 2])
    with pytest.raises(ValueError):
        Adam(net, lr=-1.0)
    with pytest.raises(ValueError):
        Adam(net, lr=0.1, beta1=1.0)
    with pytest.raises(ValueError):
        SGD(net, lr=0.1, momentum=1.0)


def test_zero_grad_passthrough():
    net = MLP([2, 2], rng=np.random.default_rng(2))
    net.forward(np.ones((1, 2)))
    net.backward(np.ones((1, 2)))
    opt = Adam(net, lr=0.1)
    opt.zero_grad()
    assert all(np.all(g == 0) for g in net.gradients().values())


def test_adam_zero_grad_step_keeps_params():
    """A step on exactly-zero gradients must not move parameters."""
    net = MLP([2, 2], rng=np.random.default_rng(3))
    before = {k: v.copy() for k, v in net.parameters().items()}
    opt = Adam(net, lr=0.1)
    net.zero_grad()
    opt.step()
    for k, v in net.parameters().items():
        np.testing.assert_allclose(v, before[k])
