"""Tests for packets, ECN codepoints, and flow bookkeeping."""

import pytest

from repro.netsim.flow import Flow, MICE_ELEPHANT_THRESHOLD, classify_flow_size
from repro.netsim.packet import ECNCodepoint, Packet, PacketKind


class TestPacket:
    def test_defaults(self):
        p = Packet(flow_id=1, src="h0", dst="h1", size_bytes=1000)
        assert p.kind == PacketKind.DATA
        assert p.ecn == ECNCodepoint.ECT
        assert not p.marked

    def test_mark_ce_on_ect(self):
        p = Packet(flow_id=1, src="h0", dst="h1", size_bytes=1000)
        p.mark_ce()
        assert p.marked
        assert p.ecn == ECNCodepoint.CE

    def test_mark_ce_noop_on_non_ect(self):
        p = Packet(flow_id=1, src="h0", dst="h1", size_bytes=64,
                   ecn=ECNCodepoint.NON_ECT)
        p.mark_ce()
        assert not p.marked

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            Packet(flow_id=1, src="h0", dst="h1", size_bytes=0)

    def test_latency(self):
        p = Packet(flow_id=1, src="h0", dst="h1", size_bytes=100,
                   create_time=1.0)
        p.deliver_time = 1.5
        assert p.latency() == pytest.approx(0.5)

    def test_control_detection(self):
        ack = Packet(flow_id=1, src="h0", dst="h1", size_bytes=64,
                     kind=PacketKind.ACK)
        cnp = Packet(flow_id=1, src="h0", dst="h1", size_bytes=64,
                     kind=PacketKind.CNP)
        data = Packet(flow_id=1, src="h0", dst="h1", size_bytes=64)
        assert ack.is_control() and cnp.is_control()
        assert not data.is_control()


class TestFlow:
    def test_classification_threshold(self):
        assert classify_flow_size(MICE_ELEPHANT_THRESHOLD) == "mice"
        assert classify_flow_size(MICE_ELEPHANT_THRESHOLD + 1) == "elephant"

    def test_flow_kind_properties(self):
        mouse = Flow(1, "h0", "h1", 10_000)
        eleph = Flow(2, "h0", "h1", 20_000_000)
        assert mouse.is_mice and not mouse.is_elephant
        assert eleph.is_elephant and not eleph.is_mice

    def test_fct_none_until_finished(self):
        f = Flow(1, "h0", "h1", 1000, start_time=2.0)
        assert f.fct is None and not f.done
        f.finish_time = 2.5
        assert f.done
        assert f.fct == pytest.approx(0.5)

    def test_ideal_fct(self):
        f = Flow(1, "h0", "h1", 1_000_000)
        # 1 MB over 1 Gbps = 8 ms, plus RTT
        assert f.ideal_fct(1e9, base_rtt=1e-3) == pytest.approx(9e-3)

    def test_ideal_fct_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            Flow(1, "h0", "h1", 1000).ideal_fct(0.0)

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            Flow(1, "h0", "h1", 0)

    def test_remaining_bytes(self):
        f = Flow(1, "h0", "h1", 1000)
        f.bytes_sent = 400
        assert f.remaining_bytes() == 600
        f.bytes_sent = 1500
        assert f.remaining_bytes() == 0
