"""End-to-end tests for the packet-level network facade."""

import numpy as np
import pytest

from repro.netsim.ecn import ECNConfig
from repro.netsim.failures import LinkFailureInjector
from repro.netsim.flow import Flow
from repro.netsim.network import PacketNetwork
from repro.netsim.topology import TopologyConfig


def mk_net(**kw):
    defaults = dict(n_spine=2, n_leaf=2, hosts_per_leaf=2,
                    host_rate_bps=1e8, spine_rate_bps=4e8)
    defaults.update(kw)
    return PacketNetwork(TopologyConfig(**defaults), seed=1)


class TestLifecycle:
    def test_switch_and_host_names(self):
        net = mk_net()
        assert net.switch_names() == ["leaf0", "leaf1", "spine0", "spine1"]
        assert net.host_names() == ["h0", "h1", "h2", "h3"]

    def test_duplicate_flow_rejected(self):
        net = mk_net()
        net.start_flow(Flow(1, "h0", "h2", 1000))
        with pytest.raises(ValueError):
            net.start_flow(Flow(1, "h0", "h3", 1000))

    def test_finished_flows_collected_in_order(self):
        net = mk_net()
        flows = [Flow(i, "h0", "h2", 5_000 * (i + 1)) for i in range(3)]
        net.start_flows(flows)
        net.advance(1.0)
        assert len(net.finished_flows) == 3
        fts = [f.finish_time for f in net.finished_flows]
        assert fts == sorted(fts)

    def test_advance_validates_dt(self):
        net = mk_net()
        with pytest.raises(ValueError):
            net.advance(0.0)

    def test_unknown_transport_rejected(self):
        with pytest.raises(ValueError):
            PacketNetwork(TopologyConfig(), transport="tcp-reno")


class TestStats:
    def test_tx_bytes_accounts_flow_volume(self):
        net = mk_net()
        f = Flow(1, "h0", "h2", 40_000)
        net.start_flow(f)
        net.advance(1.0)
        stats = net.queue_stats()
        # leaf0 forwarded the flow upstream (plus control packets)
        assert stats["leaf0"].tx_bytes >= 40_000
        assert f.done

    def test_interval_reset_between_snapshots(self):
        net = mk_net()
        net.start_flow(Flow(1, "h0", "h2", 40_000))
        net.advance(1.0)
        net.queue_stats()
        second = net.queue_stats()   # immediately after: nothing new
        assert second["leaf0"].tx_bytes == 0

    def test_utilization_bounded(self):
        net = mk_net()
        net.start_flows([Flow(i, f"h{i % 2}", "h2", 100_000) for i in range(4)])
        net.advance(0.01)
        for st in net.queue_stats().values():
            assert 0.0 <= st.utilization <= 1.0

    def test_flow_observations_reach_stats(self):
        net = mk_net()
        net.start_flow(Flow(7, "h0", "h2", 50_000))
        net.advance(0.005)
        stats = net.queue_stats()
        assert 7 in stats["leaf0"].flow_obs

    def test_marked_bytes_with_aggressive_ecn(self):
        net = mk_net()
        net.set_ecn_all(ECNConfig(1, 2, 1.0))
        net.start_flows([Flow(i, f"h{i}", "h3", 200_000) for i in range(2)])
        net.advance(0.05)
        total_marked = sum(s.tx_marked_bytes for s in net.queue_stats().values())
        assert total_marked > 0

    def test_no_marks_with_huge_thresholds(self):
        net = mk_net()
        net.set_ecn_all(ECNConfig(50_000_000, 99_000_000, 0.01))
        net.start_flows([Flow(i, f"h{i}", "h3", 100_000) for i in range(2)])
        net.advance(0.05)
        total_marked = sum(s.tx_marked_bytes for s in net.queue_stats().values())
        assert total_marked == 0


class TestECNControl:
    def test_set_ecn_single_switch(self):
        net = mk_net()
        cfg = ECNConfig(1_000, 9_000, 0.7)
        net.set_ecn("leaf1", cfg)
        assert net.topology.node("leaf1").current_ecn() == cfg
        assert net.topology.node("leaf0").current_ecn() != cfg

    def test_set_ecn_rejects_host(self):
        net = mk_net()
        with pytest.raises(TypeError):
            net.set_ecn("h0", ECNConfig(1, 2, 0.5))

    def test_lower_threshold_means_more_marks(self):
        def marked_fraction(ecn):
            net = mk_net()
            net.set_ecn_all(ecn)
            net.start_flows([Flow(i, f"h{i}", "h3", 300_000)
                             for i in range(2)])
            net.advance(0.1)
            st = net.queue_stats()
            tx = sum(s.tx_bytes for s in st.values())
            marked = sum(s.tx_marked_bytes for s in st.values())
            return marked / max(tx, 1)

        low = marked_fraction(ECNConfig(1_000, 5_000, 1.0))
        high = marked_fraction(ECNConfig(500_000, 900_000, 1.0))
        assert low > high


class TestIncastBehaviour:
    def test_incast_builds_queue_at_last_hop(self):
        net = mk_net(hosts_per_leaf=4, n_leaf=2)
        # 7 senders -> h0: last-hop port on leaf0 must congest
        flows = [Flow(i, f"h{i}", "h0", 100_000, start_time=0.0)
                 for i in range(1, 8)]
        net.start_flows(flows)
        net.advance(0.002)
        stats = net.queue_stats()
        assert stats["leaf0"].max_port_qlen_bytes > 10_000

    def test_latency_samples_collected(self):
        net = mk_net()
        net.start_flow(Flow(1, "h0", "h2", 50_000))
        net.advance(0.05)
        assert len(net.latencies) > 0
        for _, lat in net.latencies:
            assert lat > 0


class TestLinkFailures:
    def test_fail_fraction_and_restore(self):
        net = mk_net()
        inj = LinkFailureInjector(net, rng=np.random.default_rng(0))
        chosen = inj.fail_fraction(0.25)
        assert len(chosen) >= 1
        assert inj.any_down()
        for sw_name, idx in chosen:
            assert not net.topology.node(sw_name).ports[idx].up
        assert inj.restore_all() == len(chosen)
        assert not inj.any_down()

    def test_flows_survive_partial_failure(self):
        """With 2 spines, failing one leaf uplink leaves a path."""
        net = mk_net()
        inj = LinkFailureInjector(net, rng=np.random.default_rng(3))
        # fail exactly one leaf->spine port
        leaf_ports = [(s, i) for (s, i) in net.topology.fabric_ports
                      if s.startswith("leaf")]
        sw_name, idx = leaf_ports[0]
        net.topology.node(sw_name).ports[idx].set_up(False)
        flows = [Flow(i, "h0", "h2", 50_000) for i in range(3)]
        net.start_flows(flows)
        net.advance(2.0)
        assert all(f.done for f in flows)

    def test_schedule_episode(self):
        net = mk_net()
        inj = LinkFailureInjector(net, rng=np.random.default_rng(0))
        inj.schedule_episode(fail_at=0.01, restore_at=0.02, fraction=0.25)
        net.advance(0.015)
        assert inj.any_down()
        net.advance(0.01)
        assert not inj.any_down()

    def test_schedule_validation(self):
        net = mk_net()
        inj = LinkFailureInjector(net)
        with pytest.raises(ValueError):
            inj.schedule_episode(fail_at=1.0, restore_at=0.5)
        with pytest.raises(ValueError):
            inj.fail_fraction(0.0)
