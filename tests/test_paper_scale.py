"""Paper-scale smoke tests: the 288-host fabric of §5.2.

The default :class:`FluidConfig` IS the paper's fabric (6 spines, 12
leaves, 24 hosts/leaf at 25/100 Gbps); these tests prove the library
actually runs at that scale — short horizons keep them in CI budget.
"""

import numpy as np
import pytest

from repro.core.config import PETConfig
from repro.core.pet import PETController
from repro.core.training import run_control_loop
from repro.netsim.fluid import FluidConfig, FluidNetwork
from repro.netsim.topology import TopologyConfig
from repro.traffic.generator import PoissonTrafficGenerator, TrafficConfig
from repro.traffic.workloads import WEB_SEARCH


@pytest.fixture(scope="module")
def paper_net():
    cfg = FluidConfig()       # paper scale by construction
    assert cfg.n_hosts == 288
    net = FluidNetwork(cfg, seed=0)
    gen = PoissonTrafficGenerator(net.host_names(), WEB_SEARCH,
                                  rng=np.random.default_rng(1))
    flows = gen.generate(TrafficConfig(load=0.6, duration=5e-3,
                                       host_rate_bps=cfg.host_rate_bps))
    net.start_flows(flows)
    return net, flows


def test_paper_fabric_shape(paper_net):
    net, _ = paper_net
    names = net.switch_names()
    assert len([n for n in names if n.startswith("leaf")]) == 12
    assert len([n for n in names if n.startswith("spine")]) == 6
    # queue count: 288 leaf-down + 72 leaf-up + 72 spine-down
    assert net.n_queues == 288 + 72 + 72


def test_paper_scale_traffic_volume(paper_net):
    net, flows = paper_net
    # 288 hosts at 25G and 60% load for 5 ms ≈ 3.4 GB offered
    offered = sum(f.size_bytes for f in flows)
    capacity = 288 * 25e9 / 8 * 5e-3
    assert offered / capacity == pytest.approx(0.6, rel=0.25)


def test_paper_scale_simulation_advances(paper_net):
    net, flows = paper_net
    net.advance(5e-3)
    stats = net.queue_stats()
    assert len(stats) == 18
    assert len(net.finished_flows) > 100
    util = [s.utilization for s in stats.values()]
    assert all(0.0 <= u <= 1.0 for u in util)


def test_pet_controls_288_host_fabric(paper_net):
    net, _ = paper_net
    pet = PETController(net.switch_names(),
                        PETConfig.fast(delta_t=1e-3, seed=0))
    result = run_control_loop(net, pet, intervals=5, delta_t=1e-3)
    assert result.intervals == 5
    assert len(pet.trainer.agents) == 18


def test_packet_topology_builds_at_paper_scale():
    """The packet model's 288-host fabric constructs (running it for
    seconds is out of unit-test budget, but the wiring must be sound)."""
    from repro.netsim.engine import Simulator
    from repro.netsim.topology import LeafSpineTopology
    topo = LeafSpineTopology(TopologyConfig.paper_scale(), Simulator(),
                             rng=np.random.default_rng(0))
    assert len(topo.hosts) == 288
    assert len(topo.switches()) == 18
    # every leaf routes every host
    for leaf in topo.leaves:
        assert len(leaf.routes) == 288
