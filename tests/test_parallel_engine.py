"""The parallel rollout engine's contracts (docs/PARALLEL.md).

- serial (workers=1) and parallel (workers=N) runs return identical,
  task-id-ordered results;
- per-task seeds derive from ``seed_root -> spawn_key(task_id)`` and
  are installed as the task-seed context in both paths;
- ordinary exceptions become structured :class:`TaskFailure` records
  (no retry — they are deterministic);
- a task whose worker process *dies* is retried once in isolation, then
  surfaced as a structured failure — never a hung pool;
- unpicklable specs fail fast at submission;
- a task hung past ``task_timeout_s`` is killed and recorded as a
  structured ``Timeout`` failure — ``run()`` never blocks forever;
- :class:`CheckpointManager` stays safe under concurrent writers.
"""

import os
import pickle
import time

import numpy as np
import pytest

from repro.parallel import (Engine, TaskFailedError, TaskSpec,
                            current_task_seed, derive_rng, derive_seed,
                            fallback_rng, map_tasks, run_tasks, task_seed)

WORKERS = 2


# --------------------------------------------------------- task bodies
# (module-level: they must pickle into worker processes)
def _square(x):
    return x * x


def _boom(x):
    raise ValueError(f"boom {x}")


def _seed_probe(_x):
    return current_task_seed()


def _rng_draw(n):
    return fallback_rng(0).random(n)


def _crash_once(sentinel):
    """Dies hard on the first attempt, succeeds on the retry."""
    if os.path.exists(sentinel):
        return "recovered"
    with open(sentinel, "w"):
        pass
    os._exit(13)


def _crash_always(_x):
    os._exit(13)


def _hang(_x):
    time.sleep(600)


def _nap(x):
    time.sleep(0.02)
    return x


def _sleep_return(s):
    time.sleep(s)
    return s


def _hang_once(sentinel):
    """Sleeps forever on its first run (so a pool kill catches it in
    flight), returns immediately on the resubmission."""
    if os.path.exists(sentinel):
        return "resubmitted"
    with open(sentinel, "w"):
        pass
    time.sleep(600)


def _collateral_then_crash_once(mark_dir):
    """Attempt 1: killed as collateral of another task's timeout (sleeps
    forever).  Attempt 2 (the resubmission): genuine worker crash.
    Attempt 3 (the isolated crash-retry): recovers."""
    n = len(os.listdir(mark_dir))
    with open(os.path.join(mark_dir, f"mark{n}"), "w"):
        pass
    if n == 0:
        time.sleep(600)
    if n == 1:
        os._exit(13)
    return "recovered"


def _ckpt_write(args):
    directory, step = args
    from repro.rl.checkpoint import CheckpointManager
    CheckpointManager(directory, keep=3).save(
        {"w": np.full(4, float(step))}, step)
    return step


# --------------------------------------------------------- core contracts
class TestOrderedResults:
    def test_serial_matches_parallel(self):
        items = list(range(8))
        serial = map_tasks(_square, items, workers=1).values()
        parallel = map_tasks(_square, items, workers=WORKERS).values()
        assert serial == parallel == [x * x for x in items]

    def test_results_in_task_id_order_regardless_of_submission(self):
        specs = [TaskSpec(task_id=i, fn=_square, args=(i,))
                 for i in reversed(range(6))]
        report = run_tasks(specs, workers=WORKERS)
        assert [o.task_id for o in report.outcomes] == list(range(6))
        assert report.values() == [i * i for i in range(6)]

    def test_report_bookkeeping(self):
        report = map_tasks(_square, [1, 2, 3], workers=1)
        assert report.n_tasks == 3
        assert report.workers == 1
        assert report.retries == 0
        assert len(report.task_seconds()) == 3
        assert report.tasks_per_second > 0

    def test_duplicate_task_ids_rejected(self):
        specs = [TaskSpec(task_id=0, fn=_square, args=(1,)),
                 TaskSpec(task_id=0, fn=_square, args=(2,))]
        with pytest.raises(ValueError, match="duplicate task_id"):
            run_tasks(specs)

    def test_negative_task_id_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            TaskSpec(task_id=-1, fn=_square)

    def test_unpicklable_spec_fails_fast(self):
        spec = TaskSpec(task_id=0, fn=lambda x: x, args=(1,))
        with pytest.raises((pickle.PicklingError, AttributeError)):
            run_tasks([spec], workers=WORKERS)

    def test_bad_engine_params_rejected(self):
        with pytest.raises(ValueError):
            Engine(workers=0)
        with pytest.raises(ValueError):
            Engine(workers=2, queue_depth=0)
        with pytest.raises(ValueError):
            Engine(workers=2, max_retries=-1)


# --------------------------------------------------------- seeding
class TestSeeding:
    def test_derive_seed_is_stable_and_decorrelated(self):
        assert derive_seed(0, 3) == derive_seed(0, 3)
        assert derive_seed(0, 3) != derive_seed(0, 4)
        assert derive_seed(0, 3) != derive_seed(1, 3)

    def test_derive_rng_streams_differ_per_task(self):
        a = derive_rng(0, 0).random(8)
        b = derive_rng(0, 1).random(8)
        assert not np.array_equal(a, b)

    def test_task_seed_context_installs_and_restores(self):
        assert current_task_seed() is None
        with task_seed(5):
            assert current_task_seed() == 5
            with task_seed(9):
                assert current_task_seed() == 9
            assert current_task_seed() == 5
        assert current_task_seed() is None

    def test_fallback_rng_without_context_matches_legacy(self):
        assert np.array_equal(fallback_rng(3).random(8),
                              np.random.default_rng(3).random(8))

    def test_fallback_rng_inside_context_derives_from_task_seed(self):
        with task_seed(11):
            inside = fallback_rng(0).random(8)
        assert not np.array_equal(inside, np.random.default_rng(0).random(8))

    def test_engine_installs_seed_in_both_paths(self):
        for workers in (1, WORKERS):
            report = map_tasks(_seed_probe, [0, 1, 2], workers=workers,
                               seed_root=7)
            assert report.values() == [derive_seed(7, i) for i in range(3)]

    def test_worker_streams_decorrelated_and_reproducible(self):
        s1 = map_tasks(_rng_draw, [6, 6, 6], workers=1, seed_root=7).values()
        sN = map_tasks(_rng_draw, [6, 6, 6], workers=WORKERS,
                       seed_root=7).values()
        for a, b in zip(s1, sN):
            assert np.array_equal(a, b)       # serial == parallel exactly
        # the old bug: every forked worker drew the same default_rng(0) stream
        assert not np.array_equal(s1[0], s1[1])
        other = map_tasks(_rng_draw, [6, 6, 6], workers=1, seed_root=8).values()
        assert not np.array_equal(s1[0], other[0])


# --------------------------------------------------------- failures
class TestFailures:
    @pytest.mark.parametrize("workers", [1, WORKERS])
    def test_exception_becomes_structured_failure(self, workers):
        specs = [TaskSpec(task_id=0, fn=_square, args=(3,)),
                 TaskSpec(task_id=1, fn=_boom, args=("x",))]
        report = run_tasks(specs, workers=workers)
        assert report.outcomes[0].ok
        failure = report.outcomes[1].failure
        assert failure is not None
        assert failure.error_type == "ValueError"
        assert "boom x" in failure.message
        assert not failure.worker_crashed
        assert failure.attempts == 1          # deterministic: never retried
        assert "boom" in failure.traceback

    def test_strict_values_raises_with_all_failures(self):
        specs = [TaskSpec(task_id=i, fn=_boom, args=(i,)) for i in range(3)]
        report = run_tasks(specs, workers=1)
        with pytest.raises(TaskFailedError) as err:
            report.values()
        assert len(err.value.failures) == 3
        assert report.values(strict=False) == [None, None, None]


class TestCrashRecovery:
    def test_crashed_worker_task_retried_once_and_recovers(self, tmp_path):
        sentinel = str(tmp_path / "crashed-once")
        specs = [TaskSpec(task_id=0, fn=_crash_once, args=(sentinel,)),
                 TaskSpec(task_id=1, fn=_square, args=(5,)),
                 TaskSpec(task_id=2, fn=_square, args=(6,))]
        report = run_tasks(specs, workers=WORKERS)
        assert report.values() == ["recovered", 25, 36]
        assert report.retries >= 1
        assert report.outcomes[0].attempts == 2

    def test_repeated_crash_becomes_structured_failure(self):
        specs = [TaskSpec(task_id=0, fn=_crash_always, args=(None,)),
                 TaskSpec(task_id=1, fn=_square, args=(4,))]
        report = run_tasks(specs, workers=WORKERS)
        failure = report.outcomes[0].failure
        assert failure is not None
        assert failure.worker_crashed
        assert failure.error_type == "WorkerCrash"
        assert failure.attempts == 2          # initial + one isolated retry
        assert report.outcomes[1].ok and report.outcomes[1].value == 16

    def test_crash_with_retries_disabled_fails_immediately(self):
        specs = [TaskSpec(task_id=0, fn=_crash_always, args=(None,))]
        report = run_tasks(specs, workers=WORKERS, max_retries=0)
        failure = report.outcomes[0].failure
        assert failure is not None and failure.worker_crashed
        assert failure.attempts == 1
        assert report.retries == 0


# --------------------------------------------------------- task timeouts
class TestTaskTimeout:
    def test_hung_task_becomes_timeout_failure_batch_completes(self):
        specs = [TaskSpec(task_id=0, fn=_hang, args=(None,)),
                 TaskSpec(task_id=1, fn=_square, args=(3,)),
                 TaskSpec(task_id=2, fn=_square, args=(4,))]
        started = time.monotonic()
        report = Engine(workers=WORKERS, task_timeout_s=1.0).run(specs)
        assert time.monotonic() - started < 60       # no eternal block
        failure = report.outcomes[0].failure
        assert failure is not None
        assert failure.error_type == "Timeout"
        assert not failure.worker_crashed
        assert "task_timeout_s" in failure.message
        assert report.outcomes[1].value == 9
        assert report.outcomes[2].value == 16

    def test_timeout_is_never_retried(self):
        specs = [TaskSpec(task_id=0, fn=_hang, args=(None,))]
        report = Engine(workers=WORKERS, task_timeout_s=0.5,
                        max_retries=5).run(specs)
        failure = report.outcomes[0].failure
        assert failure is not None and failure.error_type == "Timeout"
        assert failure.attempts == 1
        assert report.retries == 0

    def test_innocent_inflight_tasks_survive_the_kill(self):
        # One hang plus enough quick tasks that some are in flight on
        # the pool when its workers are terminated; they must all still
        # produce values via resubmission, with no retry budget spent.
        specs = [TaskSpec(task_id=0, fn=_hang, args=(None,))] + [
            TaskSpec(task_id=i, fn=_nap, args=(i,)) for i in range(1, 6)]
        report = Engine(workers=WORKERS, task_timeout_s=1.0).run(specs)
        assert report.outcomes[0].failure is not None
        for o in report.outcomes[1:]:
            assert o.ok and o.value == o.task_id

    def test_fast_tasks_unaffected_by_generous_timeout(self):
        report = Engine(workers=WORKERS, task_timeout_s=30.0).map(
            _square, range(6))
        assert report.values() == [x * x for x in range(6)]
        assert not report.failures

    def test_serial_path_documented_no_enforcement(self):
        report = Engine(workers=1, task_timeout_s=0.005).map(_nap, [7])
        assert report.values() == [7]        # in-process: cannot preempt

    def test_validation(self):
        with pytest.raises(ValueError):
            Engine(workers=2, task_timeout_s=0.0)


class TestTimeoutRetryInteraction:
    """Negative paths where ``task_timeout_s`` meets the retry budget.

    When a hung task's deadline expires the whole pool's workers are
    terminated, so tasks that merely shared the pool die too.  Those
    innocents are resubmitted with their attempt count rolled back —
    the kill must neither surface as their failure nor charge their
    crash-retry budget.  Both tests stage the same timeline: task 0
    hangs, task 1 delays task 2's submission so task 2's deadline lands
    *after* task 0's, and task 2 is mid-flight (sleeping forever on its
    first attempt only) when the pool is killed at task 0's deadline.
    """

    def _specs(self, fn, arg):
        return [TaskSpec(task_id=0, fn=_hang, args=(None,)),
                TaskSpec(task_id=1, fn=_sleep_return, args=(0.3,)),
                TaskSpec(task_id=2, fn=fn, args=(arg,))]

    def test_innocent_timeout_then_success_on_resubmission(self, tmp_path):
        sentinel = str(tmp_path / "hang_once")
        report = Engine(workers=2, queue_depth=2, task_timeout_s=1.5).run(
            self._specs(_hang_once, sentinel))
        hung = report.outcomes[0].failure
        assert hung is not None and hung.error_type == "Timeout"
        assert report.outcomes[1].ok and report.outcomes[1].value == 0.3
        innocent = report.outcomes[2]
        assert innocent.ok and innocent.value == "resubmitted"
        # The killed first attempt was rolled back: the successful rerun
        # counts as attempt 1 and no crash-retry was spent on it.
        assert innocent.attempts == 1
        assert report.retries == 0

    def test_collateral_kill_preserves_crash_retry_budget(self, tmp_path):
        # After the collateral kill (attempt rolled back), task 2
        # genuinely crashes once on resubmission.  With max_retries=1
        # it may burn exactly one isolated retry — which only exists if
        # the kill did NOT count as an attempt.
        mark_dir = tmp_path / "marks"
        mark_dir.mkdir()
        report = Engine(workers=2, queue_depth=2, task_timeout_s=1.5,
                        max_retries=1).run(
            self._specs(_collateral_then_crash_once, str(mark_dir)))
        hung = report.outcomes[0].failure
        assert hung is not None and hung.error_type == "Timeout"
        survivor = report.outcomes[2]
        assert survivor.ok and survivor.value == "recovered"
        assert survivor.attempts == 2      # crash attempt + isolated retry
        assert report.retries == 1
        assert len(os.listdir(mark_dir)) == 3


# --------------------------------------------------------- checkpoints
class TestConcurrentCheckpointWriters:
    def test_parallel_writers_same_directory(self, tmp_path):
        from repro.rl.checkpoint import CheckpointManager
        directory = str(tmp_path / "ckpts")
        steps = list(range(8))
        report = map_tasks(_ckpt_write, [(directory, s) for s in steps],
                           workers=4)
        assert report.values() == steps
        mgr = CheckpointManager(directory, keep=3)
        state, step = mgr.load_latest()
        assert step == max(steps)
        assert np.array_equal(state["w"], np.full(4, float(max(steps))))
        leftovers = [n for n in os.listdir(directory) if n.endswith(".tmp")]
        assert leftovers == []


# --------------------------------------------------------- shared arena
def _arena_fill_span(name, n_floats, lo, hi, value):
    """Worker body: write ``value`` into the arena span ``[lo, hi)``."""
    from repro.parallel.engine import attach_arena
    arr = attach_arena(name, n_floats)
    arr[lo:hi] = value
    return hi - lo


class TestSharedArena:
    """The zero-copy exchange substrate behind the sharded fluid step:
    one named float64 slab, creator-owned lifetime, task-id-ordered
    disjoint spans written in place by pool workers."""

    def setup_method(self):
        from repro.parallel.engine import SharedArena
        if not SharedArena.available():   # pragma: no cover
            pytest.skip("multiprocessing.shared_memory unavailable")

    def test_creator_view_round_trips(self):
        from repro.parallel.engine import SharedArena, attach_arena
        arena = SharedArena(16)
        try:
            assert arena.array is not None
            assert arena.array.size == 16
            assert (arena.array == 0.0).all()   # zero-initialized
            arena.array[3] = 7.5
            # creator's own attach is a cache hit on the same view
            view = attach_arena(arena.name, 16)
            assert view is arena.array
            assert view[3] == 7.5
        finally:
            arena.close()

    def test_attach_size_mismatch_raises(self):
        from repro.parallel.engine import SharedArena, attach_arena
        arena = SharedArena(8)
        try:
            with pytest.raises(ValueError, match="holds 8 floats"):
                attach_arena(arena.name, 9)
        finally:
            arena.close()

    def test_close_is_idempotent_and_unlinks(self):
        from repro.parallel.engine import (SharedArena,
                                           _ARENA_ATTACHMENTS)
        arena = SharedArena(4)
        name = arena.name
        assert name in _ARENA_ATTACHMENTS
        arena.close()
        arena.close()
        assert name not in _ARENA_ATTACHMENTS
        assert arena.array is None

    def test_invalid_sizes_raise(self):
        from repro.parallel.engine import SharedArena
        with pytest.raises(ValueError):
            SharedArena(0)

    def test_workers_write_disjoint_spans_in_place(self):
        """Pool workers mutate the creator's slab through the handle —
        no pickled state in either direction beyond the span bounds."""
        from repro.parallel.engine import SharedArena
        arena = SharedArena(12)
        try:
            specs = [TaskSpec(task_id=t,
                              fn=_arena_fill_span,
                              args=(arena.name, 12, t * 4, (t + 1) * 4,
                                    float(t + 1)))
                     for t in range(3)]
            sizes = Engine(workers=WORKERS).run(specs).values()
            assert sizes == [4, 4, 4]
            assert arena.array is not None
            expected = np.repeat([1.0, 2.0, 3.0], 4)
            assert np.array_equal(arena.array, expected)
        finally:
            arena.close()
