"""``python -m repro bench`` — schema, verification, and CLI contract."""

import json

import pytest

from repro.parallel.perfbench import (BENCH_SCHEMA, WORKLOADS, bench_main,
                                      run_bench)


class TestRunBench:
    def test_quick_report_schema_and_verification(self, tmp_path):
        out = str(tmp_path / "BENCH_parallel.json")
        report = run_bench(workers=2, quick=True,
                           workloads=["figure_matrix"], out=out)
        with open(out, encoding="utf-8") as f:
            on_disk = json.load(f)
        assert on_disk == report
        assert report["schema"] == BENCH_SCHEMA
        assert report["quick"] is True
        assert report["workers"] == 2
        assert isinstance(report["cpu_count"], int)
        (w,) = report["workloads"]
        assert w["name"] == "figure_matrix"
        assert w["tasks"] >= 2
        assert w["results_match"] is True        # parallel == serial, exactly
        assert w["serial"]["wall_s"] > 0
        assert w["parallel"]["wall_s"] > 0
        assert w["speedup"] > 0
        assert len(w["serial"]["task_s"]) == w["tasks"]
        assert set(w["stages"]) == {"spec_build_s", "serial_run_s",
                                    "parallel_run_s", "verify_s"}
        assert report["total"]["all_results_match"] is True

    def test_rejects_serial_only(self):
        with pytest.raises(ValueError, match="workers"):
            run_bench(workers=1, quick=True, out=None)

    def test_rejects_unknown_workload(self):
        with pytest.raises(ValueError, match="unknown workload"):
            run_bench(workers=2, quick=True, workloads=["nope"], out=None)

    def test_workload_registry(self):
        assert set(WORKLOADS) == {"pretrain_multi", "sweep_grid",
                                  "figure_matrix"}
        for build in WORKLOADS.values():
            specs = build(True)
            assert len(specs) >= 2
            assert [s.task_id for s in specs] == list(range(len(specs)))


class TestBenchCLI:
    def test_bench_main_writes_report_and_exits_zero(self, tmp_path, capsys):
        out = str(tmp_path / "bench.json")
        rc = bench_main(["--quick", "--workers", "2",
                         "--workload", "sweep_grid", "--out", out])
        assert rc == 0
        printed = capsys.readouterr().out
        assert "sweep_grid" in printed
        with open(out, encoding="utf-8") as f:
            assert json.load(f)["total"]["all_results_match"] is True

    def test_repro_cli_dispatches_bench(self, tmp_path):
        from repro.cli import main
        out = str(tmp_path / "bench.json")
        rc = main(["bench", "--quick", "--workers", "2",
                   "--workload", "figure_matrix", "--out", out])
        assert rc == 0
        with open(out, encoding="utf-8") as f:
            assert json.load(f)["schema"] == BENCH_SCHEMA
