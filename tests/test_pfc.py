"""Tests for the simplified PFC implementation."""

import pytest

from repro.netsim.ecn import ECNConfig
from repro.netsim.engine import Simulator
from repro.netsim.flow import Flow
from repro.netsim.link import OutputPort
from repro.netsim.network import PacketNetwork
from repro.netsim.pfc import PFCController, enable_pfc
from repro.netsim.topology import TopologyConfig


def mk_net(**kw):
    defaults = dict(n_spine=1, n_leaf=2, hosts_per_leaf=4,
                    host_rate_bps=1e8, spine_rate_bps=4e8)
    defaults.update(kw)
    return PacketNetwork(TopologyConfig(**defaults), seed=0)


class Sink:
    def __init__(self, sim):
        self.sim = sim
        self.name = "sink"
        self.received = []

    def receive(self, pkt):
        self.received.append((self.sim.now, pkt))


class TestPortPause:
    def test_paused_port_stops_dequeuing(self):
        from repro.netsim.packet import Packet
        sim = Simulator()
        sink = Sink(sim)
        port = OutputPort(sim, "A", sink, rate_bps=8e6, prop_delay=0.0)
        for i in range(3):
            port.send(Packet(flow_id=i, src="a", dst="sink",
                             size_bytes=1000))
        sim.run(until=0.5e-3)        # mid-flight of the first packet
        port.set_paused(True)        # in-flight packet still completes
        sim.run(until=10e-3)
        assert len(sink.received) == 1
        port.set_paused(False)
        sim.run(until=20e-3)
        assert len(sink.received) == 3

    def test_resume_idle_port_restarts(self):
        from repro.netsim.packet import Packet
        sim = Simulator()
        sink = Sink(sim)
        port = OutputPort(sim, "A", sink, rate_bps=8e6, prop_delay=0.0)
        port.set_paused(True)
        port.send(Packet(flow_id=1, src="a", dst="sink", size_bytes=1000))
        sim.run(until=5e-3)
        assert sink.received == []
        port.set_paused(False)
        sim.run(until=10e-3)
        assert len(sink.received) == 1


class TestPFCController:
    def test_validation(self):
        net = mk_net()
        with pytest.raises(ValueError):
            PFCController(net, xoff_bytes=100, xon_bytes=100)
        with pytest.raises(ValueError):
            PFCController(net, poll_period=0.0)

    def test_upstream_map_covers_switches(self):
        net = mk_net()
        pfc = PFCController(net)
        # leaf0 is fed by its 4 hosts and the spine
        feeders = pfc.upstream_ports["leaf0"]
        peer_names = {getattr(p.owner, "name", p.owner) for p in feeders}
        assert any(n.startswith("h") for n in peer_names)
        assert any(n.startswith("spine") for n in peer_names)

    def test_pause_fires_under_incast_and_resumes(self):
        net = mk_net(switch_buffer_bytes=1_000_000)
        net.set_ecn_all(ECNConfig(50_000_000, 90_000_000, 0.01))  # ECN off
        pfc = enable_pfc(net, xoff_bytes=60_000, xon_bytes=20_000)
        flows = [Flow(i, f"h{1 + i}", "h0", 150_000) for i in range(6)]
        net.start_flows(flows)
        net.advance(0.5)
        assert pfc.pause_events > 0
        net.advance(3.0)
        assert all(f.done for f in flows)
        assert not pfc.any_paused()          # drained and resumed
        assert pfc.resume_events == pfc.pause_events

    def test_pfc_prevents_drops_with_tiny_buffers(self):
        """The lossless claim: same burst, tiny buffers — PFC absorbs it
        upstream while the no-PFC run drops."""
        def run(with_pfc):
            net = mk_net(switch_buffer_bytes=12_000,
                         host_buffer_bytes=10_000_000)
            net.set_ecn_all(ECNConfig(50_000_000, 90_000_000, 0.01))
            if with_pfc:
                enable_pfc(net, xoff_bytes=6_000, xon_bytes=2_000)
            flows = [Flow(i, f"h{1 + i}", "h0", 60_000) for i in range(6)]
            net.start_flows(flows)
            net.advance(4.0)
            return net, flows

        net_off, flows_off = run(False)
        assert net_off.total_drops() > 0

        net_on, flows_on = run(True)
        assert net_on.total_drops() == 0
        assert all(f.done for f in flows_on)

    def test_congestion_spreading_observable(self):
        """PFC's known side effect: pausing pushes queueing upstream
        into the sender hosts' NICs."""
        net = mk_net(switch_buffer_bytes=1_000_000)
        net.set_ecn_all(ECNConfig(50_000_000, 90_000_000, 0.01))
        enable_pfc(net, xoff_bytes=30_000, xon_bytes=10_000)
        flows = [Flow(i, f"h{1 + i}", "h0", 200_000) for i in range(3)]
        net.start_flows(flows)
        net.advance(0.02)
        nic_backlog = max(h.nic.qlen_bytes for h in net.topology.hosts)
        assert nic_backlog > 0
