"""Tests for the categorical policy and the Eq. 13 exploration schedule."""

import numpy as np
import pytest

from repro.rl.nn import MLP
from repro.rl.policy import (CategoricalPolicy, ExplorationSchedule,
                             log_softmax, softmax)


class TestSoftmax:
    def test_sums_to_one(self):
        z = np.random.default_rng(0).normal(size=(5, 7))
        p = softmax(z)
        np.testing.assert_allclose(p.sum(axis=-1), 1.0)
        assert np.all(p > 0)

    def test_shift_invariance(self):
        z = np.array([[1.0, 2.0, 3.0]])
        np.testing.assert_allclose(softmax(z), softmax(z + 100.0))

    def test_numerical_stability_large_logits(self):
        p = softmax(np.array([[1000.0, 0.0]]))
        assert np.isfinite(p).all()
        assert p[0, 0] == pytest.approx(1.0)

    def test_log_softmax_consistency(self):
        z = np.random.default_rng(1).normal(size=(3, 4))
        np.testing.assert_allclose(log_softmax(z), np.log(softmax(z)),
                                   atol=1e-12)


class TestCategoricalPolicy:
    def _policy(self, seed=0, n_actions=4):
        net = MLP([3, 8, n_actions], rng=np.random.default_rng(seed))
        return CategoricalPolicy(net, rng=np.random.default_rng(seed + 1))

    def test_act_returns_valid_action_and_logprob(self):
        pol = self._policy()
        a, logp = pol.act(np.zeros(3))
        assert 0 <= a < pol.n_actions
        assert logp <= 0.0

    def test_greedy_picks_argmax(self):
        pol = self._policy()
        obs = np.ones(3)
        p = pol.probs(obs)[0]
        a, _ = pol.act(obs, greedy=True)
        assert a == int(np.argmax(p))

    def test_sampling_matches_distribution(self):
        pol = self._policy(seed=3)
        obs = np.ones(3)
        p = pol.probs(obs)[0]
        counts = np.zeros(pol.n_actions)
        n = 5000
        for _ in range(n):
            a, _ = pol.act(obs)
            counts[a] += 1
        np.testing.assert_allclose(counts / n, p, atol=0.03)

    def test_epsilon_one_is_uniform(self):
        pol = self._policy(seed=4)
        obs = np.ones(3)
        counts = np.zeros(pol.n_actions)
        n = 4000
        for _ in range(n):
            a, _ = pol.act(obs, epsilon=1.0)
            counts[a] += 1
        np.testing.assert_allclose(counts / n, 0.25, atol=0.04)

    def test_entropy_bounds(self):
        pol = self._policy()
        h = pol.entropy(np.zeros((2, 3)))
        assert np.all(h >= 0)
        assert np.all(h <= np.log(pol.n_actions) + 1e-9)

    def test_batch_obs_rejected_by_act(self):
        pol = self._policy()
        with pytest.raises(ValueError):
            pol.act(np.zeros((2, 3)))

    def test_grad_log_prob_logits(self):
        """Analytic d log p(a)/d z vs numerical differentiation."""
        rng = np.random.default_rng(5)
        z = rng.normal(size=(1, 4))
        a = np.array([2])
        analytic = CategoricalPolicy.grad_log_prob_logits(softmax(z), a)
        eps = 1e-6
        num = np.zeros_like(z)
        for j in range(4):
            zp, zm = z.copy(), z.copy()
            zp[0, j] += eps
            zm[0, j] -= eps
            num[0, j] = (log_softmax(zp)[0, a[0]] -
                         log_softmax(zm)[0, a[0]]) / (2 * eps)
        np.testing.assert_allclose(analytic, num, atol=1e-6)

    def test_grad_entropy_logits(self):
        rng = np.random.default_rng(6)
        z = rng.normal(size=(1, 5))

        def entropy(zz):
            p = softmax(zz)
            return float(-(p * np.log(p)).sum())

        analytic = CategoricalPolicy.grad_entropy_logits(softmax(z))
        eps = 1e-6
        num = np.zeros_like(z)
        for j in range(5):
            zp, zm = z.copy(), z.copy()
            zp[0, j] += eps
            zm[0, j] -= eps
            num[0, j] = (entropy(zp) - entropy(zm)) / (2 * eps)
        np.testing.assert_allclose(analytic, num, atol=1e-6)


class TestExplorationSchedule:
    def test_constant_during_warmup(self):
        s = ExplorationSchedule(eps0=0.2, decay_rate=0.99, decay_step=50)
        vals = [s.step() for _ in range(51)]
        assert all(v == pytest.approx(0.2) for v in vals)

    def test_eq13_decay_after_warmup(self):
        s = ExplorationSchedule(eps0=0.2, decay_rate=0.99, decay_step=50)
        for _ in range(51):
            s.step()
        # t = 51 now
        expected = 0.99 ** (51 / 50) * 0.2
        assert s.value() == pytest.approx(expected)

    def test_monotone_decay(self):
        s = ExplorationSchedule(eps0=0.5, decay_rate=0.9, decay_step=10)
        vals = [s.step() for _ in range(200)]
        assert vals[-1] < vals[20] < vals[0] + 1e-12
        assert all(a >= b - 1e-15 for a, b in zip(vals, vals[1:]))

    def test_min_eps_floor(self):
        s = ExplorationSchedule(eps0=0.5, decay_rate=0.5, decay_step=1,
                                min_eps=0.1)
        for _ in range(100):
            s.step()
        assert s.value() == pytest.approx(0.1)

    def test_reset(self):
        s = ExplorationSchedule(eps0=0.3, decay_rate=0.9, decay_step=5)
        for _ in range(50):
            s.step()
        s.reset()
        assert s.value() == pytest.approx(0.3)

    def test_validation(self):
        with pytest.raises(ValueError):
            ExplorationSchedule(eps0=1.5)
        with pytest.raises(ValueError):
            ExplorationSchedule(decay_rate=0.0)
        with pytest.raises(ValueError):
            ExplorationSchedule(decay_step=0)
