"""Tests for the PPO learner (paper Eq. 11-12)."""

import numpy as np
import pytest

from repro.rl.ppo import PPOAgent, PPOConfig, RolloutBuffer, approx_kl_k3


def _agent(**overrides):
    cfg = PPOConfig(obs_dim=3, n_actions=4, hidden=(16, 16), seed=0,
                    **overrides)
    return PPOAgent(cfg)


class TestRolloutBuffer:
    def test_add_and_len(self):
        buf = RolloutBuffer()
        buf.add(np.zeros(3), 1, 0.5, False, -0.2, 0.1)
        assert len(buf) == 1
        buf.clear()
        assert len(buf) == 0

    def test_flattens_obs(self):
        buf = RolloutBuffer()
        buf.add(np.zeros((1, 3)), 0, 0.0, False, 0.0, 0.0)
        assert buf.obs[0].shape == (3,)


class TestPPOAgent:
    def test_act_returns_decision(self):
        agent = _agent()
        d = agent.act(np.zeros(3))
        assert set(d) == {"action", "log_prob", "value"}
        assert 0 <= d["action"] < 4

    def test_update_on_empty_buffer_is_noop(self):
        agent = _agent()
        stats = agent.update()
        assert stats["policy_loss"] == 0.0
        assert agent.updates == 0

    def test_update_clears_buffer_and_counts(self):
        agent = _agent()
        for _ in range(8):
            d = agent.act(np.zeros(3))
            agent.record(np.zeros(3), d["action"], 1.0, False,
                         d["log_prob"], d["value"])
        stats = agent.update(last_obs=np.zeros(3))
        assert len(agent.buffer) == 0
        assert agent.updates == 1
        assert np.isfinite(stats["policy_loss"])
        assert np.isfinite(stats["value_loss"])

    def test_learns_contextual_bandit(self):
        """Reward 1 iff action == argmax(obs); PPO should find it."""
        rng = np.random.default_rng(0)
        agent = _agent(actor_lr=5e-3, critic_lr=5e-3, epochs=6)
        for it in range(60):
            for _ in range(64):
                obs = rng.normal(size=3)
                d = agent.act(obs)
                reward = 1.0 if d["action"] == int(np.argmax(obs)) else 0.0
                agent.record(obs, d["action"], reward, True,
                             d["log_prob"], d["value"])
            agent.update()
        hits = 0
        for _ in range(200):
            obs = rng.normal(size=3)
            d = agent.act(obs, greedy=True)
            hits += d["action"] == int(np.argmax(obs))
        assert hits / 200 > 0.8

    def test_value_regression(self):
        """Critic converges to constant return on a fixed-reward problem."""
        agent = _agent(critic_lr=1e-2, gamma=0.0)
        obs = np.ones(3)
        for _ in range(40):
            for _ in range(32):
                d = agent.act(obs)
                agent.record(obs, d["action"], 2.0, True,
                             d["log_prob"], d["value"])
            agent.update()
        assert agent.value(obs) == pytest.approx(2.0, abs=0.3)

    def test_checkpoint_roundtrip(self):
        a = _agent()
        b = PPOAgent(PPOConfig(obs_dim=3, n_actions=4, hidden=(16, 16), seed=9))
        obs = np.ones(3)
        b.load_state_dict(a.state_dict())
        np.testing.assert_allclose(a.policy.probs(obs), b.policy.probs(obs))
        assert a.value(obs) == pytest.approx(b.value(obs))

    def test_greedy_act_deterministic(self):
        agent = _agent()
        actions = {agent.act(np.ones(3), greedy=True)["action"]
                   for _ in range(10)}
        assert len(actions) == 1

    def test_update_reports_nonnegative_kl(self):
        rng = np.random.default_rng(1)
        agent = _agent(epochs=4, actor_lr=1e-2)
        for _ in range(32):
            o = rng.normal(size=3)
            d = agent.act(o)
            agent.record(o, d["action"], rng.normal(), False,
                         d["log_prob"], d["value"])
        stats = agent.update(last_obs=np.zeros(3))
        assert stats["approx_kl"] >= 0.0

    def test_policy_moves_toward_advantaged_action(self):
        """A single update with positive advantage on one action should
        raise that action's probability (the Eq. 11 ascent direction)."""
        agent = _agent(epochs=1, normalize_advantages=False,
                       entropy_coef=0.0)
        obs = np.zeros(3)
        p_before = agent.policy.probs(obs)[0].copy()
        target = 2
        logp = float(np.log(p_before[target]))
        # many identical transitions, all rewarding action `target`
        for _ in range(32):
            agent.record(obs, target, 1.0, True, logp, 0.0)
        agent.update()
        p_after = agent.policy.probs(obs)[0]
        assert p_after[target] > p_before[target]


class TestKLEstimator:
    """The k3 estimator replacing the signed k1 ``mean(old - new)``."""

    def test_identical_policies_give_zero(self):
        lp = np.log(np.full(4, 0.25))
        assert approx_kl_k3(lp, lp) == pytest.approx(0.0)

    def test_nonnegative_where_k1_goes_negative(self):
        # samples whose likelihood rose under the new policy: k1 < 0
        old = np.log(np.array([0.5, 0.4, 0.3]))
        new = np.log(np.array([0.7, 0.6, 0.5]))
        k1 = float(np.mean(old - new))
        assert k1 < 0
        assert approx_kl_k3(old, new) >= 0.0

    def test_termwise_nonnegative(self):
        rng = np.random.default_rng(0)
        old = np.log(rng.uniform(0.05, 0.95, size=100))
        new = np.log(rng.uniform(0.05, 0.95, size=100))
        log_ratio = new - old
        terms = (np.exp(log_ratio) - 1.0) - log_ratio
        assert np.all(terms >= 0.0)       # (x-1) - log(x) >= 0 for x > 0
        assert approx_kl_k3(old, new) == pytest.approx(terms.mean())

    def test_matches_exact_kl_under_proportional_sampling(self):
        """With action counts exactly proportional to p, the sample mean
        of the k3 terms equals KL(p||q) exactly: E_p[r-1] = 0 and
        E_p[-log r] = KL for r = q/p."""
        p = np.array([0.5, 0.25, 0.25])
        q = np.array([0.25, 0.5, 0.25])
        actions = np.array([0, 0, 1, 2])          # proportions == p
        old = np.log(p[actions])
        new = np.log(q[actions])
        exact = float(np.sum(p * np.log(p / q)))
        assert approx_kl_k3(old, new) == pytest.approx(exact)


class TestTruncationBootstrap:
    """Regression for the headline bugfix: an episode ending on a time
    limit must bootstrap V(s_T) into GAE instead of zeroing it."""

    @staticmethod
    def _capture_gae_args(monkeypatch):
        import repro.rl.ppo as ppo_mod
        captured = {}
        real = ppo_mod.compute_gae

        def spy(rewards, values, dones, last_value, gamma, lam, **kw):
            captured["dones"] = np.asarray(dones).copy()
            captured["last_value"] = float(last_value)
            captured["truncateds"] = np.asarray(kw["truncateds"]).copy()
            captured["bootstrap_values"] = np.asarray(
                kw["bootstrap_values"]).copy()
            return real(rewards, values, dones, last_value, gamma, lam, **kw)

        monkeypatch.setattr(ppo_mod, "compute_gae", spy)
        return captured

    def _fill(self, agent, obs, n, *, final_done, final_truncated):
        for i in range(n):
            d = agent.act(obs)
            last = i == n - 1
            agent.record(obs, d["action"], 1.0, final_done and last,
                         d["log_prob"], d["value"],
                         truncated=final_truncated and last)

    def test_truncated_episode_end_bootstraps_last_value(self, monkeypatch):
        captured = self._capture_gae_args(monkeypatch)
        agent = _agent()
        obs = np.ones(3)
        expected_v = agent.value(obs)          # critic pre-update
        self._fill(agent, obs, 8, final_done=False, final_truncated=True)
        agent.update(last_obs=obs)
        assert captured["dones"][-1]           # truncation still ends episode
        assert captured["truncateds"][-1]
        assert captured["last_value"] == pytest.approx(expected_v)
        # the final step's delta bootstraps V(s_T), not zero
        assert captured["bootstrap_values"][-1] == pytest.approx(expected_v)

    def test_terminated_episode_end_does_not_bootstrap(self, monkeypatch):
        captured = self._capture_gae_args(monkeypatch)
        agent = _agent()
        obs = np.ones(3)
        self._fill(agent, obs, 8, final_done=True, final_truncated=False)
        agent.update(last_obs=obs)
        assert captured["dones"][-1]
        assert not captured["truncateds"][-1]
        assert captured["last_value"] == 0.0
        assert captured["bootstrap_values"][-1] == 0.0

    def test_mid_buffer_truncation_carries_explicit_bootstrap(self, monkeypatch):
        captured = self._capture_gae_args(monkeypatch)
        agent = _agent()
        obs = np.ones(3)
        d = agent.act(obs)
        agent.record(obs, d["action"], 1.0, False, d["log_prob"], d["value"],
                     truncated=True, bootstrap_value=3.5)
        self._fill(agent, obs, 3, final_done=True, final_truncated=False)
        agent.update()
        assert captured["truncateds"][0]
        assert captured["bootstrap_values"][0] == pytest.approx(3.5)

    def test_buffer_records_truncation_as_done(self):
        buf = RolloutBuffer()
        buf.add(np.zeros(3), 0, 1.0, False, 0.0, 0.0, truncated=True)
        assert buf.dones == [True]
        assert buf.truncateds == [True]
        buf.clear()
        assert buf.truncateds == [] and buf.bootstraps == []
