"""Tests for the PPO learner (paper Eq. 11-12)."""

import numpy as np
import pytest

from repro.rl.ppo import PPOAgent, PPOConfig, RolloutBuffer


def _agent(**overrides):
    cfg = PPOConfig(obs_dim=3, n_actions=4, hidden=(16, 16), seed=0,
                    **overrides)
    return PPOAgent(cfg)


class TestRolloutBuffer:
    def test_add_and_len(self):
        buf = RolloutBuffer()
        buf.add(np.zeros(3), 1, 0.5, False, -0.2, 0.1)
        assert len(buf) == 1
        buf.clear()
        assert len(buf) == 0

    def test_flattens_obs(self):
        buf = RolloutBuffer()
        buf.add(np.zeros((1, 3)), 0, 0.0, False, 0.0, 0.0)
        assert buf.obs[0].shape == (3,)


class TestPPOAgent:
    def test_act_returns_decision(self):
        agent = _agent()
        d = agent.act(np.zeros(3))
        assert set(d) == {"action", "log_prob", "value"}
        assert 0 <= d["action"] < 4

    def test_update_on_empty_buffer_is_noop(self):
        agent = _agent()
        stats = agent.update()
        assert stats["policy_loss"] == 0.0
        assert agent.updates == 0

    def test_update_clears_buffer_and_counts(self):
        agent = _agent()
        for _ in range(8):
            d = agent.act(np.zeros(3))
            agent.record(np.zeros(3), d["action"], 1.0, False,
                         d["log_prob"], d["value"])
        stats = agent.update(last_obs=np.zeros(3))
        assert len(agent.buffer) == 0
        assert agent.updates == 1
        assert np.isfinite(stats["policy_loss"])
        assert np.isfinite(stats["value_loss"])

    def test_learns_contextual_bandit(self):
        """Reward 1 iff action == argmax(obs); PPO should find it."""
        rng = np.random.default_rng(0)
        agent = _agent(actor_lr=5e-3, critic_lr=5e-3, epochs=6)
        for it in range(60):
            for _ in range(64):
                obs = rng.normal(size=3)
                d = agent.act(obs)
                reward = 1.0 if d["action"] == int(np.argmax(obs)) else 0.0
                agent.record(obs, d["action"], reward, True,
                             d["log_prob"], d["value"])
            agent.update()
        hits = 0
        for _ in range(200):
            obs = rng.normal(size=3)
            d = agent.act(obs, greedy=True)
            hits += d["action"] == int(np.argmax(obs))
        assert hits / 200 > 0.8

    def test_value_regression(self):
        """Critic converges to constant return on a fixed-reward problem."""
        agent = _agent(critic_lr=1e-2, gamma=0.0)
        obs = np.ones(3)
        for _ in range(40):
            for _ in range(32):
                d = agent.act(obs)
                agent.record(obs, d["action"], 2.0, True,
                             d["log_prob"], d["value"])
            agent.update()
        assert agent.value(obs) == pytest.approx(2.0, abs=0.3)

    def test_checkpoint_roundtrip(self):
        a = _agent()
        b = PPOAgent(PPOConfig(obs_dim=3, n_actions=4, hidden=(16, 16), seed=9))
        obs = np.ones(3)
        b.load_state_dict(a.state_dict())
        np.testing.assert_allclose(a.policy.probs(obs), b.policy.probs(obs))
        assert a.value(obs) == pytest.approx(b.value(obs))

    def test_greedy_act_deterministic(self):
        agent = _agent()
        actions = {agent.act(np.ones(3), greedy=True)["action"]
                   for _ in range(10)}
        assert len(actions) == 1

    def test_policy_moves_toward_advantaged_action(self):
        """A single update with positive advantage on one action should
        raise that action's probability (the Eq. 11 ascent direction)."""
        agent = _agent(epochs=1, normalize_advantages=False,
                       entropy_coef=0.0)
        obs = np.zeros(3)
        p_before = agent.policy.probs(obs)[0].copy()
        target = 2
        logp = float(np.log(p_before[target]))
        # many identical transitions, all rewarding action `target`
        for _ in range(32):
            agent.record(obs, target, 1.0, True, logp, 0.0)
        agent.update()
        p_after = agent.policy.probs(obs)[0]
        assert p_after[target] > p_before[target]
