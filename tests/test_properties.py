"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.action import ActionCodec
from repro.core.config import PETConfig
from repro.core.reward import RewardComputer
from repro.core.state import HistoryWindow, StateBuilder
from repro.netsim.ecn import ECNConfig
from repro.netsim.engine import Simulator
from repro.netsim.network import QueueStats
from repro.netsim.packet import Packet
from repro.netsim.queueing import ByteQueue
from repro.rl.gae import compute_gae, discounted_returns
from repro.rl.policy import softmax
from repro.traffic.cdf import PiecewiseCDF


# ---------------------------------------------------------------- ECN RED
@given(kmin=st.integers(0, 10**6),
       span=st.integers(1, 10**6),
       pmax=st.floats(0.0, 1.0),
       q=st.floats(0, 10**7))
def test_red_probability_bounds(kmin, span, pmax, q):
    cfg = ECNConfig(kmin, kmin + span, pmax)
    p = cfg.marking_probability(q)
    assert 0.0 <= p <= 1.0


@given(kmin=st.integers(0, 10**5), span=st.integers(1, 10**5),
       pmax=st.floats(0.01, 1.0),
       q1=st.floats(0, 2 * 10**5), q2=st.floats(0, 2 * 10**5))
def test_red_probability_monotone_in_qlen(kmin, span, pmax, q1, q2):
    cfg = ECNConfig(kmin, kmin + span, pmax)
    lo, hi = sorted((q1, q2))
    assert cfg.marking_probability(lo) <= cfg.marking_probability(hi) + 1e-12


# ---------------------------------------------------------------- queue
@given(sizes=st.lists(st.integers(1, 5_000), min_size=1, max_size=50))
def test_queue_byte_conservation(sizes):
    """enqueued == dequeued + dropped + resident, in bytes."""
    q = ByteQueue(capacity_bytes=10_000)
    for i, s in enumerate(sizes):
        q.enqueue(Packet(flow_id=i, src="a", dst="b", size_bytes=s), now=0.0)
    drained = 0
    while True:
        pkt = q.dequeue(1.0)
        if pkt is None:
            break
        drained += pkt.size_bytes
    c = q.counters
    assert c.enqueued_bytes == drained
    assert c.enqueued_bytes + c.dropped_bytes == sum(sizes)
    assert q.qlen_bytes == 0


@given(sizes=st.lists(st.integers(1, 2_000), min_size=1, max_size=30))
def test_queue_fifo_property(sizes):
    q = ByteQueue(capacity_bytes=10**9)
    for i, s in enumerate(sizes):
        q.enqueue(Packet(flow_id=i, src="a", dst="b", size_bytes=s), 0.0)
    out = []
    while len(q):
        out.append(q.dequeue(0.0).flow_id)
    assert out == sorted(out)


# ---------------------------------------------------------------- CDF
@st.composite
def cdf_knots(draw):
    n = draw(st.integers(2, 8))
    vals = sorted(draw(st.lists(st.integers(1, 10**7), min_size=n, max_size=n,
                                unique=True)))
    probs = sorted(draw(st.lists(st.floats(0.0, 0.999), min_size=n - 1,
                                 max_size=n - 1)))
    return list(zip(vals, [*probs, 1.0]))


@given(knots=cdf_knots(), seed=st.integers(0, 2**31 - 1))
@settings(max_examples=50)
def test_cdf_samples_within_support(knots, seed):
    cdf = PiecewiseCDF(knots)
    rng = np.random.default_rng(seed)
    s = cdf.sample(rng, 100)
    assert np.all(s >= knots[0][0] - 1e-9)
    assert np.all(s <= knots[-1][0] + 1e-9)


@given(knots=cdf_knots(), q1=st.floats(0, 1), q2=st.floats(0, 1))
@settings(max_examples=50)
def test_cdf_quantile_monotone(knots, q1, q2):
    cdf = PiecewiseCDF(knots)
    lo, hi = sorted((q1, q2))
    assert cdf.quantile(lo) <= cdf.quantile(hi) + 1e-9


@given(knots=cdf_knots())
@settings(max_examples=50)
def test_cdf_mean_within_support(knots):
    cdf = PiecewiseCDF(knots)
    assert knots[0][0] - 1e-6 <= cdf.mean() <= knots[-1][0] + 1e-6


# ---------------------------------------------------------------- GAE
@given(rewards=st.lists(st.floats(-10, 10), min_size=1, max_size=20),
       gamma=st.floats(0.0, 1.0), lam=st.floats(0.0, 1.0))
@settings(max_examples=80)
def test_gae_returns_equal_adv_plus_values(rewards, gamma, lam):
    n = len(rewards)
    values = np.linspace(-1, 1, n)
    adv, ret = compute_gae(rewards, values, [False] * n, 0.5, gamma, lam)
    np.testing.assert_allclose(ret, adv + values, atol=1e-9)


@given(rewards=st.lists(st.floats(-5, 5), min_size=1, max_size=15),
       gamma=st.floats(0.0, 0.999))
@settings(max_examples=80)
def test_gae_lambda_one_matches_discounted_returns(rewards, gamma):
    n = len(rewards)
    values = np.zeros(n)
    adv, _ = compute_gae(rewards, values, [False] * n, 0.0, gamma, 1.0)
    rtg = discounted_returns(rewards, [False] * n, 0.0, gamma)
    np.testing.assert_allclose(adv, rtg, atol=1e-7)


# ---------------------------------------------------------------- softmax
@given(logits=st.lists(st.floats(-50, 50), min_size=2, max_size=16))
def test_softmax_is_distribution(logits):
    p = softmax(np.array([logits]))
    assert p.shape == (1, len(logits))
    assert abs(p.sum() - 1.0) < 1e-9
    assert np.all(p >= 0)


# ---------------------------------------------------------------- action codec
@given(alpha=st.floats(1.0, 100.0), n=st.integers(0, 12))
def test_threshold_formula_positive_monotone(alpha, n):
    t = ActionCodec.threshold_bytes(alpha, n)
    assert t > 0
    assert ActionCodec.threshold_bytes(alpha, n + 1) > t


@given(idx=st.integers(0, 39))
def test_compact_codec_decode_total(idx):
    codec = ActionCodec.compact()
    cfg = codec.decode(idx)
    assert cfg.kmin_bytes <= cfg.kmax_bytes
    assert 0 < cfg.pmax <= 1.0


# ---------------------------------------------------------------- state/reward
def _stats(qlen, tx, marked, cap=1e9, avg_qlen=None):
    return QueueStats(switch="s", interval=1e-3, qlen_bytes=qlen,
                      max_port_qlen_bytes=qlen,
                      avg_qlen_bytes=qlen if avg_qlen is None else avg_qlen,
                      tx_bytes=tx, tx_marked_bytes=marked, dropped_pkts=0,
                      capacity_bps=cap, ecn=ECNConfig(1000, 2000, 0.5))


@given(qlen=st.floats(0, 1e8), tx=st.integers(0, 10**8),
       marked=st.integers(0, 10**8), incast=st.floats(0, 1000),
       ratio=st.floats(-1, 2))
@settings(max_examples=100)
def test_state_features_always_normalized(qlen, tx, marked, incast, ratio):
    sb = StateBuilder(PETConfig())
    f = sb.build(_stats(qlen, tx, marked), incast, ratio)
    arr = f.to_array()
    assert np.all(arr >= 0.0) and np.all(arr <= 1.0)


@given(qlen=st.floats(0, 1e9), tx=st.integers(0, 10**9))
@settings(max_examples=100)
def test_reward_bounded_in_default_mode(qlen, tx):
    rc = RewardComputer(PETConfig())
    r = rc.compute(_stats(qlen, tx, 0))
    assert 0.0 <= r <= 1.0


@given(k=st.integers(1, 8), pushes=st.integers(0, 20))
def test_history_window_obs_dim_invariant(k, pushes):
    w = HistoryWindow(k)
    for i in range(pushes):
        w.push(np.full(6, float(i % 3) / 3))
    assert w.observation().shape == (6 * k,)


# ---------------------------------------------------------------- engine
@given(delays=st.lists(st.floats(0.0, 100.0), min_size=1, max_size=40))
def test_engine_processes_in_time_order(delays):
    sim = Simulator()
    seen = []
    for d in delays:
        sim.schedule(d, lambda t=d: seen.append(t))
    sim.run()
    assert seen == sorted(seen)
    assert len(seen) == len(delays)
