"""Property-based (hypothesis) netsim invariants, checked end-to-end.

These run whole simulations under randomized traffic — with the runtime
sanitizer active (conftest enables :mod:`repro.devtools.sanitize` for
the whole suite) — and assert the three invariants the parallel rollout
engine's correctness story leans on:

- **packet conservation** — for every switch output queue, accepted
  bytes/packets equal dequeued plus still-resident ones (and offered
  traffic equals accepted plus dropped);
- **bounded queues** — no queue ever exceeds its buffer, in the packet
  simulator (``ByteQueue.capacity_bytes``) and the fluid one
  (``switch_buffer_bytes``) alike;
- **ECN monotonicity** — the empirical mark rate of :class:`ECNMarker`
  is non-decreasing in queue occupancy.

Example counts are deliberately small on the simulation-heavy cases:
each example is a full (tiny) run, and the suite must stay inside the
tier-1 time budget.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.netsim.ecn import ECNConfig, ECNMarker
from repro.netsim.flow import Flow
from repro.netsim.fluid import FluidConfig, FluidNetwork
from repro.netsim.network import PacketNetwork
from repro.netsim.topology import TopologyConfig

_TINY = TopologyConfig(n_spine=1, n_leaf=2, hosts_per_leaf=2)


def _packet_net(seed, sizes):
    net = PacketNetwork(TopologyConfig(n_spine=1, n_leaf=2, hosts_per_leaf=2),
                        transport="dcqcn", seed=seed)
    hosts = net.host_names()
    net.start_flows([Flow(i, hosts[i % len(hosts)],
                          hosts[(i + 2) % len(hosts)], size,
                          start_time=i * 5e-5)
                     for i, size in enumerate(sizes)])
    return net


def _switch_queues(net):
    for sw in net.topology.switches():
        for port in sw.ports:
            yield port.queue


# ------------------------------------------------------- conservation
class TestPacketConservation:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**16),
           sizes=st.lists(st.integers(1_000, 120_000),
                          min_size=2, max_size=8))
    def test_every_queue_conserves_packets(self, seed, sizes):
        net = _packet_net(seed, sizes)
        for _ in range(4):
            net.advance(5e-4)
            for q in _switch_queues(net):
                c = q.counters
                # accepted = drained + still resident
                assert c.enqueued_bytes == c.dequeued_bytes + q.qlen_bytes
                assert c.enqueued_pkts == c.dequeued_pkts + len(q)
                # offered = accepted + dropped, and nothing negative
                assert min(c.enqueued_bytes, c.dequeued_bytes,
                           c.dropped_bytes, q.qlen_bytes) >= 0

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**16),
           sizes=st.lists(st.integers(1_000, 120_000),
                          min_size=2, max_size=8))
    def test_conservation_survives_drain(self, seed, sizes):
        """After the sources go quiet, queues drain to empty and the
        ledgers close exactly."""
        net = _packet_net(seed, sizes)
        net.advance(0.05)                       # long enough to finish
        for q in _switch_queues(net):
            c = q.counters
            assert q.qlen_bytes == 0
            assert c.enqueued_bytes == c.dequeued_bytes
            assert c.enqueued_pkts == c.dequeued_pkts


# ------------------------------------------------------- bounded queues
class TestBoundedQueues:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**16),
           sizes=st.lists(st.integers(10_000, 200_000),
                          min_size=2, max_size=8))
    def test_packet_queues_never_exceed_buffer(self, seed, sizes):
        net = _packet_net(seed, sizes)
        for _ in range(4):
            net.advance(5e-4)
            for q in _switch_queues(net):
                assert q.qlen_bytes <= q.capacity_bytes

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**16),
           buffer_kb=st.integers(20, 500),
           n_flows=st.integers(2, 10))
    def test_fluid_queues_never_exceed_buffer(self, seed, buffer_kb,
                                              n_flows):
        cfg = FluidConfig(n_spine=1, n_leaf=2, hosts_per_leaf=2,
                          host_rate_bps=10e9, spine_rate_bps=40e9,
                          switch_buffer_bytes=buffer_kb * 1000)
        net = FluidNetwork(cfg, seed=seed)
        hosts = net.host_names()
        rng = np.random.default_rng(seed)
        net.start_flows([Flow(i, hosts[i % 2], hosts[2 + i % 2],
                              int(rng.integers(20_000, 500_000)),
                              start_time=float(rng.uniform(0, 1e-3)))
                         for i in range(n_flows)])
        for _ in range(10):
            net.advance(2e-4)
            assert float(net.q_len.max(initial=0.0)) \
                <= cfg.switch_buffer_bytes + 1e-6


# ------------------------------------------------------- ECN monotone
class TestECNMarkRateMonotone:
    @settings(max_examples=40, deadline=None)
    @given(kmin=st.integers(0, 100_000),
           span=st.integers(1, 100_000),
           pmax=st.floats(0.05, 1.0),
           q1=st.floats(0, 250_000), q2=st.floats(0, 250_000),
           seed=st.integers(0, 2**16))
    def test_empirical_mark_rate_monotone_in_occupancy(self, kmin, span,
                                                       pmax, q1, q2, seed):
        """Common-random-numbers pairing: two markers with identical rng
        streams draw the same uniforms, so a mark at the lower occupancy
        implies a mark at the higher one — the empirical rate is
        monotone draw-for-draw, not just in expectation."""
        lo, hi = sorted((q1, q2))
        cfg = ECNConfig(kmin, kmin + span, pmax)
        m_lo = ECNMarker(cfg, rng=np.random.default_rng(seed))
        m_hi = ECNMarker(cfg, rng=np.random.default_rng(seed))
        marks_lo = sum(m_lo.should_mark(lo) for _ in range(200))
        marks_hi = sum(m_hi.should_mark(hi) for _ in range(200))
        assert marks_lo <= marks_hi
