"""Tests for the byte queue: FIFO, drops, time averages, flow observation."""

import pytest

from repro.netsim.packet import Packet, PacketKind
from repro.netsim.queueing import ByteQueue


def _pkt(flow_id=1, size=100, kind=PacketKind.DATA, src="h0", dst="h1"):
    return Packet(flow_id=flow_id, src=src, dst=dst, size_bytes=size, kind=kind)


class TestFIFO:
    def test_enqueue_dequeue_order(self):
        q = ByteQueue(10_000)
        for i in range(3):
            assert q.enqueue(_pkt(flow_id=i), now=0.0)
        got = [q.dequeue(0.1).flow_id for _ in range(3)]
        assert got == [0, 1, 2]
        assert q.dequeue(0.2) is None

    def test_occupancy_tracks_bytes(self):
        q = ByteQueue(10_000)
        q.enqueue(_pkt(size=300), 0.0)
        q.enqueue(_pkt(size=200), 0.0)
        assert q.qlen_bytes == 500
        q.dequeue(0.1)
        assert q.qlen_bytes == 200

    def test_drop_when_full(self):
        q = ByteQueue(250)
        assert q.enqueue(_pkt(size=200), 0.0)
        assert not q.enqueue(_pkt(size=100), 0.0)
        assert q.counters.dropped_pkts == 1
        assert q.counters.dropped_bytes == 100
        assert q.qlen_bytes == 200

    def test_marked_bytes_counter(self):
        q = ByteQueue(10_000)
        p = _pkt(size=100)
        p.mark_ce()
        q.enqueue(p, 0.0)
        q.enqueue(_pkt(size=100), 0.0)
        q.dequeue(0.1)
        q.dequeue(0.2)
        assert q.counters.dequeued_marked_bytes == 100
        assert q.counters.dequeued_bytes == 200


class TestTimeAverage:
    def test_constant_occupancy(self):
        q = ByteQueue(10_000)
        q.enqueue(_pkt(size=500), 0.0)
        assert q.time_avg_qlen(1.0) == pytest.approx(500.0)

    def test_step_occupancy(self):
        q = ByteQueue(10_000)
        q.enqueue(_pkt(size=1000), 0.0)   # 1000 bytes on [0, 1)
        q.dequeue(1.0)                    # 0 bytes on [1, 2)
        assert q.time_avg_qlen(2.0) == pytest.approx(500.0)

    def test_reset_restarts_window(self):
        q = ByteQueue(10_000)
        q.enqueue(_pkt(size=1000), 0.0)
        q.reset_time_avg(1.0)
        assert q.time_avg_qlen(2.0) == pytest.approx(1000.0)

    def test_zero_elapsed_returns_instantaneous(self):
        q = ByteQueue(10_000)
        q.enqueue(_pkt(size=700), 0.0)
        assert q.time_avg_qlen(0.0) == pytest.approx(700.0)


class TestFlowObservation:
    def test_data_packets_observed(self):
        q = ByteQueue(10_000)
        q.enqueue(_pkt(flow_id=7, size=100), 1.0)
        q.enqueue(_pkt(flow_id=7, size=200), 2.0)
        obs = q.flow_obs[7]
        assert obs.bytes_seen == 300
        assert obs.last_seen == 2.0
        assert obs.src == "h0" and obs.dst == "h1"

    def test_control_packets_not_observed(self):
        q = ByteQueue(10_000)
        q.enqueue(_pkt(flow_id=9, kind=PacketKind.ACK, size=64), 0.0)
        assert 9 not in q.flow_obs

    def test_prune_old_observations(self):
        q = ByteQueue(10_000)
        q.enqueue(_pkt(flow_id=1), 1.0)
        q.enqueue(_pkt(flow_id=2), 5.0)
        pruned = q.prune_flow_obs(older_than=3.0)
        assert pruned == 1
        assert set(q.flow_obs) == {2}

    def test_memory_estimate_scales_with_entries(self):
        q = ByteQueue(10_000)
        assert q.flow_obs_nbytes() == 0
        for i in range(5):
            q.enqueue(_pkt(flow_id=i), 0.0)
        assert q.flow_obs_nbytes() == 5 * 48


def test_invalid_capacity():
    with pytest.raises(ValueError):
        ByteQueue(0)
