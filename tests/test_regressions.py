"""Regression guards for bugs found and fixed during development."""

import numpy as np
import pytest

from repro.baselines.acc import ACCConfig, ACCController
from repro.core.action import ActionCodec
from repro.core.config import PETConfig
from repro.core.ecn_cm import ECNConfigModule
from repro.netsim.flow import Flow
from repro.netsim.fluid import FluidConfig, FluidNetwork
from repro.traffic.cdf import PiecewiseCDF


class DummyNetwork:
    def __init__(self):
        self.applied = []

    def set_ecn(self, switch, config):
        self.applied.append((switch, config))


class TestECNCMClockReset:
    """Bug: a controller pre-trained on one simulation carried its
    rate-limit clock to a fresh simulation whose time restarts at 0,
    suppressing every tuning forever (ACC looked identical to SECN1)."""

    def test_backwards_time_resets_rate_limit(self):
        mod = ECNConfigModule("leaf0", ActionCodec.compact(),
                              min_interval=1e-3)
        net = DummyNetwork()
        assert mod.apply(0, now=5.0, network=net) is not None   # training net
        # deployment network starts at t=0 — must NOT be suppressed
        assert mod.apply(1, now=0.001, network=net) is not None
        assert mod.suppressed == 0

    def test_acc_controls_fresh_network_after_pretraining(self):
        def fresh_net(seed):
            net = FluidNetwork(FluidConfig(n_spine=1, n_leaf=2,
                                           hosts_per_leaf=2,
                                           host_rate_bps=10e9,
                                           spine_rate_bps=40e9), seed=seed)
            net.start_flow(Flow(1, "h0", "h2", 50_000_000))
            return net

        base = PETConfig(seed=0, delta_t=1e-3)
        acc = ACCController(["leaf0", "leaf1", "spine0"],
                            ACCConfig(base=base, seed=0))
        train = fresh_net(0)
        for _ in range(3):
            train.advance(1e-3)
            acc.decide(train.queue_stats(), train.now, train)
        # move to a new simulation whose clock restarts
        deploy = fresh_net(1)
        deploy.advance(1e-3)
        applied = acc.decide(deploy.queue_stats(), deploy.now, deploy)
        assert applied, "tunings must not be suppressed on the new network"


class TestCDFAtomMean:
    """Bug: a first CDF knot with positive probability is a point mass
    (inverse sampling clamps there) that mean() originally ignored."""

    def test_point_mass_included(self):
        cdf = PiecewiseCDF([(1, 0.5), (2, 1.0)])
        # 0.5 mass at 1, plus uniform on [1,2] with mass 0.5
        assert cdf.mean() == pytest.approx(0.5 * 1 + 0.5 * 1.5)
        rng = np.random.default_rng(0)
        assert np.mean(cdf.sample(rng, 100_000)) == pytest.approx(
            cdf.mean(), rel=0.01)


class TestRewardPerQueueNormalization:
    """Bug: the reward's La term used switch-total occupancy, saturating
    to ~0 on any busy switch so agents learned to maximize utilization
    with megabyte queues."""

    def test_same_per_queue_occupancy_same_reward(self):
        from repro.core.reward import RewardComputer
        from repro.netsim.network import QueueStats

        def stats(total_qlen, n_queues):
            return QueueStats(switch="s", interval=1e-3,
                              qlen_bytes=total_qlen,
                              max_port_qlen_bytes=total_qlen,
                              avg_qlen_bytes=total_qlen,
                              tx_bytes=0, tx_marked_bytes=0, dropped_pkts=0,
                              capacity_bps=1e9, ecn=None, n_queues=n_queues)

        rc = RewardComputer(PETConfig())
        # 10 queues at 50KB each vs 1 queue at 50KB: same La
        assert rc.latency_term(stats(500_000, 10)) == pytest.approx(
            rc.latency_term(stats(50_000, 1)))


class TestFluidSlotRecycling:
    """Bug: finished flows never returned their array slots, so the
    per-step vector work grew with cumulative (not concurrent) flows."""

    def test_free_list_recycles(self):
        net = FluidNetwork(FluidConfig(n_spine=1, n_leaf=2, hosts_per_leaf=2,
                                       host_rate_bps=10e9,
                                       spine_rate_bps=40e9), seed=0)
        net.start_flow(Flow(1, "h0", "h2", 10_000))
        net.advance(5e-3)
        assert net.flow_objs[1].done
        assert net._free_list          # slot returned
        net.start_flow(Flow(2, "h0", "h2", 10_000, start_time=net.now))
        net.advance(5e-3)
        assert net.flow_objs[2].done
        assert net._n_flows == 1       # second flow reused the slot


class TestUnseededFallbackRNGs:
    """Bug (found by PET002 of repro.devtools.lint): seven components fell
    back to ``np.random.default_rng()`` — OS entropy — when no Generator
    was injected, so "default" simulations were silently nondeterministic.
    The fallbacks are now seeded (``default_rng(0)``)."""

    def test_topology_default_rng_is_deterministic(self):
        from repro.netsim.engine import Simulator
        from repro.netsim.topology import LeafSpineTopology, TopologyConfig

        def marker_probe(topo):
            # the marker RNG streams are derived from the topology rng
            sw = topo.leaves[0]
            m = sw.ports[0].marker
            return [m.rng.random() for _ in range(10)]

        cfg = TopologyConfig(n_spine=1, n_leaf=2, hosts_per_leaf=2)
        p1 = marker_probe(LeafSpineTopology(cfg, Simulator()))
        p2 = marker_probe(LeafSpineTopology(cfg, Simulator()))
        assert p1 == p2

    def test_failure_injector_default_rng_is_deterministic(self):
        from repro.netsim.failures import LinkFailureInjector
        from repro.netsim.network import PacketNetwork
        from repro.netsim.topology import TopologyConfig

        def failed_set():
            net = PacketNetwork(TopologyConfig(n_spine=2, n_leaf=4,
                                               hosts_per_leaf=2))
            inj = LinkFailureInjector(net)
            return sorted(inj.fail_fraction(0.5))

        assert failed_set() == failed_set()

    def test_policy_and_replay_default_rngs_are_deterministic(self):
        from repro.rl.nn import MLP
        from repro.rl.policy import CategoricalPolicy
        from repro.rl.replay import ReplayBuffer, Transition

        obs = np.zeros(4)
        a1 = [CategoricalPolicy(MLP([4, 8, 3])).act(obs, epsilon=0.5)[0]
              for _ in range(20)]
        a2 = [CategoricalPolicy(MLP([4, 8, 3])).act(obs, epsilon=0.5)[0]
              for _ in range(20)]
        assert a1 == a2

        def sample_ids():
            buf = ReplayBuffer(capacity=64)
            for i in range(32):
                buf.push(Transition(np.zeros(2), i, 0.0, np.zeros(2), False))
            batch = buf.sample(8)
            return [int(a) for a in np.atleast_1d(batch[1])]

        assert sample_ids() == sample_ids()
