"""Crash-safety tests for checkpoint format v2 and the rotation manager."""

import os

import numpy as np
import pytest

from repro.core.config import PETConfig
from repro.core.training import pretrain_offline_multi
from repro.netsim.fluid import FluidConfig, FluidNetwork
from repro.rl.checkpoint import (CHECKPOINT_VERSION, CheckpointCorruptError,
                                 CheckpointError, CheckpointManager,
                                 load_checkpoint, save_checkpoint)


def mk_state(seed=0):
    rng = np.random.default_rng(seed)
    return {"actor": {"w": rng.normal(size=(4, 3)), "b": rng.normal(size=3)},
            "critic": {"w": rng.normal(size=(4, 1))},
            "step": np.asarray(seed)}


class TestSuffixNormalization:
    def test_save_without_suffix_writes_npz(self, tmp_path):
        final = save_checkpoint(str(tmp_path / "ckpt"), mk_state())
        assert final.endswith("ckpt.npz")
        assert os.path.exists(final)

    def test_load_without_suffix_finds_file(self, tmp_path):
        save_checkpoint(str(tmp_path / "ckpt.npz"), mk_state(3))
        loaded = load_checkpoint(str(tmp_path / "ckpt"))
        assert int(loaded["step"]) == 3

    def test_save_load_agree_on_bare_path(self, tmp_path):
        """The satellite fix: save('x') then load('x') round-trips."""
        bare = str(tmp_path / "model")
        save_checkpoint(bare, mk_state(7))
        loaded = load_checkpoint(bare)
        np.testing.assert_allclose(loaded["actor"]["w"],
                                   mk_state(7)["actor"]["w"])

    def test_missing_file_raises_filenotfound(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_checkpoint(str(tmp_path / "nope"))


class TestAtomicity:
    def test_no_tmp_leftover_after_save(self, tmp_path):
        save_checkpoint(str(tmp_path / "a.npz"), mk_state())
        assert sorted(os.listdir(tmp_path)) == ["a.npz"]

    def test_overwrite_keeps_single_file(self, tmp_path):
        path = str(tmp_path / "a.npz")
        save_checkpoint(path, mk_state(0))
        save_checkpoint(path, mk_state(1))
        assert sorted(os.listdir(tmp_path)) == ["a.npz"]
        assert int(load_checkpoint(path)["step"]) == 1

    def test_reserved_meta_key_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_checkpoint(str(tmp_path / "a.npz"),
                            {"__meta__": {"x": np.zeros(1)}})


class TestCorruptionDetection:
    def test_truncated_file(self, tmp_path):
        path = save_checkpoint(str(tmp_path / "a.npz"), mk_state())
        data = open(path, "rb").read()
        with open(path, "wb") as f:
            f.write(data[:len(data) // 2])
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(path)

    def test_flipped_byte_in_tensor_data(self, tmp_path):
        state = mk_state()
        path = save_checkpoint(str(tmp_path / "a.npz"), state)
        data = bytearray(open(path, "rb").read())
        # npz members are stored uncompressed, so the raw tensor bytes
        # appear verbatim in the archive — flip one of them.
        needle = np.ascontiguousarray(state["actor"]["w"]).tobytes()
        at = bytes(data).index(needle)
        data[at + 8] ^= 0xFF
        with open(path, "wb") as f:
            f.write(bytes(data))
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(path)

    def test_empty_file(self, tmp_path):
        path = str(tmp_path / "a.npz")
        open(path, "wb").close()
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(path)

    def test_archive_without_tensors(self, tmp_path):
        path = str(tmp_path / "a.npz")
        np.savez(path, **{"__meta__/version": np.asarray(2)})
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(path)

    def test_checksum_mismatch(self, tmp_path):
        path = str(tmp_path / "a.npz")
        np.savez(path, **{"w": np.ones(3),
                          "__meta__/version": np.asarray(CHECKPOINT_VERSION),
                          "__meta__/checksum": np.asarray("0" * 64)})
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(path)
        # and verify=False skips the digest comparison
        loaded = load_checkpoint(path, verify=False)
        np.testing.assert_allclose(loaded["w"], np.ones(3))

    def test_corrupt_is_checkpoint_error(self):
        assert issubclass(CheckpointCorruptError, CheckpointError)


class TestV1Compat:
    def test_plain_npz_still_loads(self, tmp_path):
        """v1 archives carry no __meta__ entries; they must keep loading."""
        path = str(tmp_path / "v1.npz")
        np.savez(path, **{"actor/w": np.arange(6.0), "critic/w": np.ones(2)})
        loaded = load_checkpoint(path)
        np.testing.assert_allclose(loaded["actor"]["w"], np.arange(6.0))


class TestCheckpointManager:
    def test_rotation_prunes_beyond_keep(self, tmp_path):
        mgr = CheckpointManager(str(tmp_path), keep=3)
        for step in range(1, 6):
            mgr.save(mk_state(step), step)
        steps = [s for s, _ in mgr.checkpoints()]
        assert steps == [3, 4, 5]
        assert mgr.latest_step() == 5

    def test_load_latest_roundtrip(self, tmp_path):
        mgr = CheckpointManager(str(tmp_path), keep=2)
        mgr.save(mk_state(1), 10)
        mgr.save(mk_state(2), 20)
        state, step = mgr.load_latest()
        assert step == 20
        assert int(state["step"]) == 2

    def test_load_latest_skips_corrupted_newest(self, tmp_path):
        mgr = CheckpointManager(str(tmp_path), keep=3)
        mgr.save(mk_state(1), 1)
        newest = mgr.save(mk_state(2), 2)
        with open(newest, "wb") as f:
            f.write(b"not a zip archive")
        state, step = mgr.load_latest()
        assert step == 1
        assert int(state["step"]) == 1
        assert len(mgr.skipped) == 1 and "ckpt-00000002" in mgr.skipped[0]

    def test_load_latest_empty_directory(self, tmp_path):
        assert CheckpointManager(str(tmp_path)).load_latest() is None
        assert CheckpointManager(str(tmp_path)).latest_step() is None

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointManager(str(tmp_path), keep=0)
        with pytest.raises(ValueError):
            CheckpointManager(str(tmp_path), prefix="a/b")
        with pytest.raises(ValueError):
            CheckpointManager(str(tmp_path)).save(mk_state(), -1)

    def test_foreign_files_ignored(self, tmp_path):
        (tmp_path / "notes.txt").write_text("hi")
        (tmp_path / "other-00000001.npz").write_bytes(b"x")
        mgr = CheckpointManager(str(tmp_path))
        assert mgr.checkpoints() == []


class TestLoadNewerThan:
    def test_returns_only_strictly_newer(self, tmp_path):
        mgr = CheckpointManager(str(tmp_path), keep=3)
        mgr.save(mk_state(1), 10)
        mgr.save(mk_state(2), 20)
        assert mgr.load_newer_than(20) is None
        state, step = mgr.load_newer_than(10)
        assert step == 20 and int(state["step"]) == 2
        state, step = mgr.load_newer_than(None)
        assert step == 20

    def test_torn_newest_falls_back_to_older_newer(self, tmp_path):
        mgr = CheckpointManager(str(tmp_path), keep=3)
        mgr.save(mk_state(1), 10)
        newest = mgr.save(mk_state(2), 20)
        with open(newest, "wb") as f:
            f.write(b"torn")
        state, step = mgr.load_newer_than(5)
        assert step == 10 and int(state["step"]) == 1
        assert mgr.skipped
        # nothing good strictly newer than 10 -> keep current weights
        assert mgr.load_newer_than(10) is None


class TestConcurrentRotation:
    """Satellite 3: hot-reload under concurrent save/prune never
    observes a torn read — a reader always gets a complete old or new
    checkpoint, and pruned-underfoot files surface as graceful skips,
    never as :class:`CheckpointCorruptError`."""

    def test_reader_never_sees_torn_checkpoint(self, tmp_path):
        import threading

        directory = str(tmp_path)
        stop = threading.Event()
        errors = []

        def writer():
            mgr = CheckpointManager(directory, keep=2)
            step = 0
            while not stop.is_set():
                step += 1
                mgr.save({"w": np.full(4, float(step))}, step)

        def reader():
            mgr = CheckpointManager(directory, keep=2)
            seen = 0
            last = None
            while seen < 200 and not stop.is_set():
                try:
                    got = mgr.load_latest()
                except CheckpointCorruptError as exc:  # torn read
                    errors.append(exc)
                    return
                if got is None:
                    continue
                state, step = got
                w = state["w"]
                # a complete checkpoint: uniform payload matching its step
                if not np.all(w == float(step)):
                    errors.append(AssertionError(
                        f"mixed payload at step {step}: {w}"))
                    return
                if last is not None and step < last:
                    errors.append(AssertionError(
                        f"step went backwards: {last} -> {step}"))
                    return
                last = step
                seen += 1

        threads = [threading.Thread(target=writer, daemon=True),
                   threading.Thread(target=reader, daemon=True)]
        reader_t = threads[1]
        for t in threads:
            t.start()
        reader_t.join(timeout=30.0)
        stop.set()
        threads[0].join(timeout=10.0)
        assert not reader_t.is_alive()
        assert errors == []

    def test_load_newer_than_under_rotation(self, tmp_path):
        import threading

        directory = str(tmp_path)
        stop = threading.Event()
        errors = []

        def writer():
            mgr = CheckpointManager(directory, keep=2)
            step = 0
            while not stop.is_set():
                step += 1
                mgr.save({"w": np.full(4, float(step))}, step)

        def poller():
            mgr = CheckpointManager(directory, keep=2)
            loaded_step = None
            reloads = 0
            while reloads < 100 and not stop.is_set():
                try:
                    got = mgr.load_newer_than(loaded_step)
                except CheckpointCorruptError as exc:
                    errors.append(exc)
                    return
                if got is None:
                    continue
                state, step = got
                if not np.all(state["w"] == float(step)):
                    errors.append(AssertionError(f"torn at {step}"))
                    return
                loaded_step = step
                reloads += 1

        w = threading.Thread(target=writer, daemon=True)
        p = threading.Thread(target=poller, daemon=True)
        w.start()
        p.start()
        p.join(timeout=30.0)
        stop.set()
        w.join(timeout=10.0)
        assert not p.is_alive()
        assert errors == []


class TestCheckpointedPretraining:
    def _make_network(self):
        cfg = FluidConfig(n_spine=1, n_leaf=2, hosts_per_leaf=2,
                          host_rate_bps=10e9, spine_rate_bps=40e9)
        return FluidNetwork(cfg, seed=0)

    def test_pretrain_writes_rotations_and_resumes(self, tmp_path):
        pet = PETConfig(seed=0)
        mgr = CheckpointManager(str(tmp_path), keep=3)
        pretrain_offline_multi(self._make_network, pet, episodes=1,
                               intervals_per_episode=20,
                               checkpoints=mgr, checkpoint_every=10)
        assert mgr.latest_step() == 20

        # damage the newest rotation: resume must fall back to the
        # previous good one instead of dying on the corrupt file.
        newest = mgr.checkpoints()[-1][1]
        with open(newest, "wb") as f:
            f.write(b"garbage")
        mgr2 = CheckpointManager(str(tmp_path), keep=3)
        state = pretrain_offline_multi(self._make_network, pet, episodes=1,
                                       intervals_per_episode=10,
                                       checkpoints=mgr2, checkpoint_every=10)
        assert mgr2.skipped            # the damaged file was noticed
        assert "leaf0" in state
        # resumed from step 10, trained 10 more -> final rotation at 20
        assert mgr2.latest_step() == 20

    def test_checkpoint_every_validated(self, tmp_path):
        mgr = CheckpointManager(str(tmp_path))
        with pytest.raises(ValueError):
            pretrain_offline_multi(self._make_network, PETConfig(seed=0),
                                   intervals_per_episode=5,
                                   checkpoints=mgr, checkpoint_every=0)
