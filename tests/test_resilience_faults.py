"""Tests for the chaos fault plan, injector, and the chaos CLI."""

import numpy as np
import pytest

from repro.analysis.experiments import ScenarioConfig
from repro.analysis.resilience import (fault_summary, first_fault_time,
                                       quarantine_spans)
from repro.cli import main as repro_main
from repro.netsim.ecn import SECN1, SECN2, ECNConfig
from repro.netsim.failures import LinkFailureInjector
from repro.netsim.fluid import FluidConfig, FluidNetwork
from repro.netsim.network import PacketNetwork
from repro.netsim.topology import TopologyConfig
from repro.resilience import (AgentCrashError, ChaosInjector, FaultPlan,
                              FaultSpec)
from repro.resilience.cli import chaos_main, run_chaos_scenario


def mk_fluid(seed=0):
    cfg = FluidConfig(n_spine=2, n_leaf=2, hosts_per_leaf=2,
                      host_rate_bps=10e9, spine_rate_bps=40e9)
    return FluidNetwork(cfg, seed=seed)


def mk_packet():
    cfg = TopologyConfig(n_spine=2, n_leaf=2, hosts_per_leaf=2,
                         host_rate_bps=1e8, spine_rate_bps=4e8)
    return PacketNetwork(cfg, seed=1)


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("meteor-strike", 0.0)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("link-down", -1.0)

    def test_window_must_end_after_start(self):
        with pytest.raises(ValueError):
            FaultSpec("degrade", 1.0, 1.0)

    def test_active_is_half_open(self):
        spec = FaultSpec("crash", 1.0, 2.0, "leaf0")
        assert not spec.active(0.5)
        assert spec.active(1.0) and spec.active(1.999)
        assert not spec.active(2.0)


class TestFaultPlan:
    def test_fig7_times(self):
        plan = FaultPlan.fig7(10.0)
        kinds = [(s.kind, s.at) for s in plan.sorted_specs()]
        assert kinds == [("link-down", 3.1), ("link-restore", 6.1)]

    def test_flap_expands_to_alternating_events(self):
        plan = FaultPlan().link_flap(0.0, 1.0, period=0.5)
        kinds = [s.kind for s in plan.sorted_specs()]
        assert kinds == ["link-down", "link-restore",
                         "link-down", "link-restore"]
        times = [s.at for s in plan.sorted_specs()]
        assert times == [0.0, 0.25, 0.5, 0.75]

    def test_builder_validation(self):
        with pytest.raises(ValueError):
            FaultPlan().degrade(0.0, 1.0, factor=0.0)
        with pytest.raises(ValueError):
            FaultPlan().blackout("leaf0", 0.0, 1.0, mode="weird")
        with pytest.raises(ValueError):
            FaultPlan().ecn_unreliable(0.0, 1.0, drop_p=0.8, delay_p=0.5)
        with pytest.raises(ValueError):
            FaultPlan().link_flap(0.0, 1.0, period=0.0)
        with pytest.raises(ValueError):
            FaultPlan.fig7(0.0)
        with pytest.raises(ValueError):
            FaultPlan.extended(1.0, [])

    def test_extended_covers_the_matrix(self):
        plan = FaultPlan.extended(1.0, ["spine0", "leaf0", "leaf1"])
        kinds = set(s.kind for s in plan.specs)
        assert kinds == {"link-down", "link-restore", "degrade", "blackout",
                         "corrupt", "crash", "ecn-unreliable"}
        # targets come from the *sorted* switch list, deterministically
        blackout = next(s for s in plan.specs if s.kind == "blackout")
        assert blackout.switch == "leaf0"


class TestFluidInjection:
    def test_link_down_and_restore_via_tick(self):
        net = mk_fluid()
        plan = FaultPlan().link_down(0.005, fraction=0.25).link_restore(0.01)
        chaos = ChaosInjector(net, plan, rng=np.random.default_rng(0))
        chaos.tick(0.0)
        assert net.uplink_up.all()
        chaos.tick(0.005)
        assert not net.uplink_up.all()
        chaos.tick(0.01)
        assert net.uplink_up.all()
        assert [e.kind for e in chaos.log] == ["link-down", "link-restore"]
        assert chaos.log.events[0].detail["links"] >= 1

    def test_degrade_window_scales_and_restores_capacity(self):
        net = mk_fluid()
        nominal = net.q_cap.copy()
        plan = FaultPlan().degrade(0.002, 0.006, factor=0.5)
        chaos = ChaosInjector(net, plan)
        chaos.tick(0.0)
        np.testing.assert_array_equal(net.q_cap, nominal)
        chaos.tick(0.003)
        assert net.fabric_capacity_factor == 0.5
        assert (net.q_cap <= nominal).all() and (net.q_cap < nominal).any()
        chaos.tick(0.006)
        assert net.fabric_capacity_factor == 1.0
        np.testing.assert_array_equal(net.q_cap, nominal)
        kinds = [e.kind for e in chaos.log]
        assert kinds == ["degrade-begin", "degrade-end"]

    def test_fabric_factor_validated(self):
        with pytest.raises(ValueError):
            mk_fluid().set_fabric_capacity_factor(0.0)
        with pytest.raises(ValueError):
            mk_fluid().set_fabric_capacity_factor(1.5)


class TestPacketInjection:
    def test_link_events_run_on_the_event_engine(self):
        net = mk_packet()
        fabric = net.topology.fabric_ports

        def downed():
            return sum(not net.topology.node(sw).ports[i].up
                       for sw, i in fabric)

        plan = FaultPlan().link_down(0.001, fraction=0.25).link_restore(0.003)
        chaos = ChaosInjector(net, plan, rng=np.random.default_rng(0))
        chaos.arm()
        try:
            net.advance(0.002)           # past the down event only
            assert downed() >= 1
            net.advance(0.002)           # past the restore event
            assert downed() == 0
        finally:
            chaos.disarm()
        assert [e.kind for e in chaos.log] == ["link-down", "link-restore"]

    def test_degrade_scales_fabric_port_rates(self):
        net = mk_packet()
        sw, idx = net.topology.fabric_ports[0]
        nominal = net.topology.node(sw).ports[idx].rate_bps
        plan = FaultPlan().degrade(0.001, 0.002, factor=0.25)
        chaos = ChaosInjector(net, plan)
        chaos.tick(0.001)
        assert net.topology.node(sw).ports[idx].rate_bps == nominal * 0.25
        chaos.tick(0.002)
        assert net.topology.node(sw).ports[idx].rate_bps == nominal


class TestTelemetryFaults:
    def test_blackout_missing_hides_the_switch(self):
        net = mk_fluid()
        plan = FaultPlan().blackout("leaf0", 0.0, 1.0, mode="missing")
        chaos = ChaosInjector(net, plan)
        stats = net.queue_stats()
        seen = chaos.filter_stats(stats, 0.5)
        assert "leaf0" not in seen and "leaf1" in seen
        # ground truth untouched
        assert "leaf0" in stats

    def test_blackout_stale_replays_last_good_stats(self):
        net = mk_fluid()
        plan = FaultPlan().blackout("leaf0", 0.01, 1.0, mode="stale")
        chaos = ChaosInjector(net, plan)
        net.advance(0.001)
        before = chaos.filter_stats(net.queue_stats(), 0.001)["leaf0"]
        net.advance(0.02)
        seen = chaos.filter_stats(net.queue_stats(), 0.021)
        assert seen["leaf0"] is before

    def test_corrupt_replaces_one_field(self):
        net = mk_fluid()
        plan = FaultPlan().corrupt("leaf1", 0.0, 1.0,
                                   stats_field="avg_qlen_bytes",
                                   value=float("nan"))
        chaos = ChaosInjector(net, plan)
        stats = net.queue_stats()
        seen = chaos.filter_stats(stats, 0.5)
        assert np.isnan(seen["leaf1"].avg_qlen_bytes)
        assert not np.isnan(stats["leaf1"].avg_qlen_bytes)
        assert np.isfinite(seen["leaf1"].qlen_bytes)

    def test_crash_window_raises_through_wrap(self):
        net = mk_fluid()
        plan = FaultPlan().agent_crash("spine0", 0.0, 1.0)

        class Inner:
            def decide(self, stats, now, network):
                return {}

            def set_training(self, training):
                pass

        chaos = ChaosInjector(net, plan)
        wrapped = chaos.wrap(Inner())
        stats = net.queue_stats()
        with pytest.raises(AgentCrashError) as err:
            wrapped.decide(stats, 0.5, net)
        assert err.value.switch == "spine0"
        # outside the window it delegates
        assert wrapped.decide(stats, 1.5, net) == {}


class TestECNUnreliability:
    def test_drop_p_one_suppresses_application(self):
        net = mk_fluid()
        plan = FaultPlan().ecn_unreliable(0.0, 1.0, drop_p=1.0)
        chaos = ChaosInjector(net, plan)
        chaos.arm()
        try:
            before = net.queue_stats()["leaf0"].ecn
            net.set_ecn("leaf0", SECN2)
            assert net.queue_stats()["leaf0"].ecn == before
            assert [e.kind for e in chaos.log] == ["ecn-dropped"]
        finally:
            chaos.disarm()
        # disarmed: applications reach the switch again
        net.set_ecn("leaf0", SECN2)
        assert net.queue_stats()["leaf0"].ecn == SECN2

    def test_delay_defers_by_the_configured_lag(self):
        net = mk_fluid()
        plan = FaultPlan().ecn_unreliable(0.0, 1.0, drop_p=0.0,
                                          delay_p=1.0, delay=0.002)
        chaos = ChaosInjector(net, plan)
        chaos.arm()
        try:
            net.set_ecn("leaf1", SECN2)
            assert net.queue_stats()["leaf1"].ecn != SECN2
            chaos.tick(0.001)
            assert net.queue_stats()["leaf1"].ecn != SECN2
            chaos.tick(0.0025)
            assert net.queue_stats()["leaf1"].ecn == SECN2
            assert chaos.log.by_kind("ecn-delayed")
        finally:
            chaos.disarm()

    def test_outside_window_applies_immediately(self):
        net = mk_fluid()
        plan = FaultPlan().ecn_unreliable(0.5, 1.0, drop_p=1.0)
        chaos = ChaosInjector(net, plan)
        chaos.arm()
        try:
            net.set_ecn("leaf0", SECN2)     # now=0, before the window
            assert net.queue_stats()["leaf0"].ecn == SECN2
        finally:
            chaos.disarm()


class TestInjectorIdempotency:
    """Satellite fix: LinkFailureInjector under repeated/overlapping use."""

    def test_fail_fraction_twice_never_duplicates(self):
        net = mk_packet()
        inj = LinkFailureInjector(net, rng=np.random.default_rng(0))
        first = inj.fail_fraction(0.5)
        second = inj.fail_fraction(0.5)
        assert not set(first) & set(second)
        assert len(inj.failed) == len(set(inj.failed))
        for sw, idx in inj.failed:
            assert not net.topology.node(sw).ports[idx].up

    def test_fail_all_then_again_is_a_noop(self):
        net = mk_packet()
        inj = LinkFailureInjector(net, rng=np.random.default_rng(0))
        inj.fail_fraction(1.0)
        assert inj.fail_fraction(1.0) == []

    def test_restore_all_twice_is_safe(self):
        net = mk_packet()
        inj = LinkFailureInjector(net, rng=np.random.default_rng(0))
        chosen = inj.fail_fraction(0.5)
        assert inj.restore_all() == len(chosen)
        assert inj.restore_all() == 0
        assert inj.failed == []


class TestChaosDeterminism:
    def _cfg(self, seed=0):
        fabric = FluidConfig(n_spine=2, n_leaf=2, hosts_per_leaf=2,
                             host_rate_bps=10e9, spine_rate_bps=40e9)
        return ScenarioConfig(duration=0.02, pretrain_intervals=0,
                              seed=seed, fluid=fabric)

    def test_same_seed_same_faultlog_and_metrics(self):
        r1, log1, rec1 = run_chaos_scenario("secn1", self._cfg(), "extended")
        r2, log2, rec2 = run_chaos_scenario("secn1", self._cfg(), "extended")
        assert log1.signature() == log2.signature()
        assert r1.mean_reward == r2.mean_reward
        assert r1.rewards_per_switch == r2.rewards_per_switch
        assert rec1 == rec2

    def test_analysis_helpers_consume_the_log(self):
        result, log, _ = run_chaos_scenario("secn1", self._cfg(), "extended")
        summary = fault_summary(log)
        assert summary.get("link-down") == 1
        assert first_fault_time(log) is not None
        assert isinstance(quarantine_spans(log), list)
        assert result.fault_count == len(result.faults) > 0


class TestChaosCLI:
    def test_chaos_main_quick(self, capsys):
        rc = chaos_main(["--quick", "--seed", "0", "--duration", "0.02",
                         "--scheme", "secn1", "--matrix", "fig7"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "link-down" in out and "chaos metrics" in out

    def test_dispatch_through_main(self, capsys):
        rc = repro_main(["chaos", "--quick", "--duration", "0.02",
                         "--scheme", "secn1", "--matrix", "fig7"])
        assert rc == 0
        assert "fault log" in capsys.readouterr().out

    def test_no_guard_flag_parses(self):
        args = __import__("repro.resilience.cli", fromlist=["x"]) \
            .build_chaos_parser().parse_args(["--no-guard"])
        assert args.no_guard is True
