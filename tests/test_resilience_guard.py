"""Graceful-degradation tests for the ResilientController guard."""

import math

import numpy as np
import pytest

from repro.baselines.static_ecn import StaticECNController
from repro.core.config import PETConfig
from repro.core.pet import PETController
from repro.core.training import run_control_loop
from repro.devtools.sanitize import InvariantViolation
from repro.netsim.ecn import SECN1, ECNConfig
from repro.netsim.fluid import FluidConfig, FluidNetwork
from repro.netsim.network import QueueStats
from repro.resilience import (AgentCrashError, ChaosInjector, FaultPlan,
                              GuardConfig, ResilientController)

SWITCHES = ["leaf0", "leaf1", "spine0"]


def mk_stats(names=SWITCHES, **overrides):
    out = {}
    for name in names:
        kw = dict(switch=name, interval=1e-3, qlen_bytes=10_000.0,
                  max_port_qlen_bytes=5_000.0, avg_qlen_bytes=8_000.0,
                  tx_bytes=100_000, tx_marked_bytes=1_000, dropped_pkts=0,
                  capacity_bps=40e9, ecn=SECN1)
        kw.update(overrides.get(name, {}) if name in overrides else {})
        out[name] = QueueStats(**kw)
    return out


class DummyNet:
    """Just enough network for the guard: set_ecn recording + now."""

    def __init__(self):
        self.now = 0.0
        self.applied = []

    def set_ecn(self, switch, config):
        self.applied.append((switch, config))


class RecordingController:
    """Inner controller that records what it saw and returns a config."""

    def __init__(self, result=None, exc=None):
        self.seen = []
        self.result = result or {}
        self.exc = exc

    def decide(self, stats, now, network):
        self.seen.append(dict(stats))
        if self.exc is not None:
            raise self.exc
        return dict(self.result)

    def set_training(self, training):
        self.training = training


class CrashingController(RecordingController):
    """Raises AgentCrashError for one switch while it appears in stats."""

    def __init__(self, crash_switch, **kw):
        super().__init__(**kw)
        self.crash_switch = crash_switch

    def decide(self, stats, now, network):
        if self.crash_switch in stats:
            raise AgentCrashError(self.crash_switch)
        return super().decide(stats, now, network)


class TestSanitation:
    def test_nan_field_cleaned_before_inner(self):
        inner = RecordingController()
        guard = ResilientController(inner, SWITCHES)
        stats = mk_stats(leaf0={"avg_qlen_bytes": float("nan")})
        guard.decide(stats, 0.0, DummyNet())
        seen = inner.seen[0]["leaf0"]
        assert seen.avg_qlen_bytes == 0.0
        events = guard.log.by_kind("telemetry-corrupt")
        assert len(events) == 1 and events[0].switch == "leaf0"
        assert events[0].detail["fields"] == ("avg_qlen_bytes",)

    def test_negative_counter_cleaned(self):
        inner = RecordingController()
        guard = ResilientController(inner, SWITCHES)
        stats = mk_stats(leaf1={"dropped_pkts": -7,
                                "capacity_bps": float("inf")})
        guard.decide(stats, 0.0, DummyNet())
        seen = inner.seen[0]["leaf1"]
        assert seen.dropped_pkts == 0 and seen.capacity_bps == 0.0

    def test_unusable_interval_drops_switch(self):
        inner = RecordingController()
        guard = ResilientController(inner, SWITCHES)
        stats = mk_stats(spine0={"interval": float("nan")})
        guard.decide(stats, 0.0, DummyNet())
        assert "spine0" not in inner.seen[0]
        assert guard.log.by_kind("telemetry-unusable")

    def test_missing_switch_logged(self):
        inner = RecordingController()
        guard = ResilientController(inner, SWITCHES)
        stats = mk_stats(names=["leaf0", "leaf1"])
        guard.decide(stats, 0.0, DummyNet())
        missing = guard.log.by_kind("telemetry-missing")
        assert [e.switch for e in missing] == ["spine0"]

    def test_clean_stats_untouched(self):
        inner = RecordingController()
        guard = ResilientController(inner, SWITCHES)
        stats = mk_stats()
        guard.decide(stats, 0.0, DummyNet())
        assert inner.seen[0]["leaf0"] is stats["leaf0"]
        assert len(guard.log) == 0


class TestCrashIsolation:
    def test_crash_quarantines_only_that_switch(self):
        inner = CrashingController("leaf0")
        net = DummyNet()
        guard = ResilientController(inner, SWITCHES)
        applied = guard.decide(mk_stats(), 0.0, net)
        # retried without leaf0: survivors were decided on
        assert "leaf0" not in inner.seen[-1]
        assert "leaf1" in inner.seen[-1]
        assert guard.quarantined() == ["leaf0"]
        # leaf0 fell back to the safe static config, on net and in output
        assert ("leaf0", guard.config.safe_ecn) in net.applied
        assert applied["leaf0"] == guard.config.safe_ecn
        kinds = [e.kind for e in guard.log]
        assert "agent-crash" in kinds and "quarantine" in kinds

    def test_reinstated_after_probation(self):
        inner = CrashingController("leaf0")
        net = DummyNet()
        cfg = GuardConfig(probation_intervals=3)
        guard = ResilientController(inner, SWITCHES, cfg)
        guard.decide(mk_stats(), 0.0, net)
        inner.crash_switch = None       # the fault clears
        for i in range(1, 3):
            guard.decide(mk_stats(), float(i), net)
            assert guard.quarantined() == ["leaf0"]
        guard.decide(mk_stats(), 3.0, net)
        assert guard.quarantined() == []
        assert "leaf0" in inner.seen[-1]
        assert guard.log.by_kind("reinstate")

    def test_relapse_doubles_probation(self):
        inner = CrashingController("leaf0")
        net = DummyNet()
        cfg = GuardConfig(probation_intervals=2, backoff_factor=2.0)
        guard = ResilientController(inner, SWITCHES, cfg)
        for i in range(12):
            guard.decide(mk_stats(), float(i), net)
        spans = [e.detail["intervals"] for e in guard.log.by_kind("quarantine")]
        assert spans[:3] == [2, 4, 8]

    def test_probation_capped(self):
        inner = CrashingController("leaf0")
        cfg = GuardConfig(probation_intervals=4, backoff_factor=10.0,
                          max_probation_intervals=6)
        guard = ResilientController(inner, SWITCHES, cfg)
        net = DummyNet()
        for i in range(20):
            guard.decide(mk_stats(), float(i), net)
        spans = [e.detail["intervals"] for e in guard.log.by_kind("quarantine")]
        assert spans[0] == 4 and all(s == 6 for s in spans[1:])

    def test_healthy_streak_clears_strikes(self):
        inner = CrashingController("leaf0")
        net = DummyNet()
        cfg = GuardConfig(probation_intervals=1, recovery_intervals=3)
        guard = ResilientController(inner, SWITCHES, cfg)
        guard.decide(mk_stats(), 0.0, net)       # crash, strike 1
        inner.crash_switch = None
        for i in range(1, 6):
            guard.decide(mk_stats(), float(i), net)
        assert guard.log.by_kind("strikes-cleared")
        assert guard.health["leaf0"].strikes == 0

    def test_unattributed_error_skips_interval(self):
        inner = RecordingController(exc=RuntimeError("boom"))
        guard = ResilientController(inner, SWITCHES)
        applied = guard.decide(mk_stats(), 0.0, DummyNet())
        assert applied == {}
        events = guard.log.by_kind("controller-error")
        assert events and events[0].detail["error"] == "RuntimeError"
        # the loop survives: next interval decides again
        inner.exc = None
        guard.decide(mk_stats(), 1.0, DummyNet())
        assert len(inner.seen) >= 2

    def test_invariant_violation_not_swallowed(self):
        inner = RecordingController(
            exc=InvariantViolation("ecn-thresholds", "harness bug"))
        guard = ResilientController(inner, SWITCHES)
        with pytest.raises(InvariantViolation):
            guard.decide(mk_stats(), 0.0, DummyNet())


class TestBoundsEnforcement:
    def test_oversized_kmax_replaced_with_safe(self):
        huge = ECNConfig(1_000, 10**9, 0.5)      # constructible, absurd
        inner = RecordingController(result={"leaf0": huge})
        net = DummyNet()
        guard = ResilientController(inner, SWITCHES)
        applied = guard.decide(mk_stats(), 0.0, net)
        assert applied["leaf0"] == guard.config.safe_ecn
        assert ("leaf0", guard.config.safe_ecn) in net.applied
        events = guard.log.by_kind("action-out-of-bounds")
        assert events and events[0].detail["kmax"] == 10**9

    def test_in_bounds_config_passes_through(self):
        ok = ECNConfig(5_000, 200_000, 0.1)
        inner = RecordingController(result={"leaf0": ok})
        guard = ResilientController(inner, SWITCHES)
        applied = guard.decide(mk_stats(), 0.0, DummyNet())
        assert applied["leaf0"] == ok
        assert not guard.log.by_kind("action-out-of-bounds")


class TestGuardGauges:
    """Quarantine/probation state is mirrored onto repro.obs gauges so
    /health and `repro trace` never call health_report() in-band."""

    def test_quarantine_exported_as_gauges(self):
        from repro import obs
        registry, _tracer = obs.enable()
        try:
            guard = ResilientController(CrashingController("leaf0"),
                                        SWITCHES)
            guard.decide(mk_stats(), 0.0, DummyNet())
            assert registry.gauge_value("guard.quarantined") == 1
            assert registry.gauge_value("guard.state", switch="leaf0") == 1.0
            assert registry.gauge_value("guard.state", switch="leaf1") == 0.0
            assert registry.gauge_value("guard.strikes", switch="leaf0") >= 1
            assert registry.gauge_value("guard.strikes", switch="leaf1") == 0
        finally:
            obs.disable()

    def test_gauges_clear_after_reinstatement(self):
        from repro import obs
        registry, _tracer = obs.enable()
        try:
            inner = CrashingController("leaf0")
            cfg = GuardConfig(probation_intervals=2)
            guard = ResilientController(inner, SWITCHES, cfg)
            guard.decide(mk_stats(), 0.0, DummyNet())
            assert registry.gauge_value("guard.quarantined") == 1
            inner.crash_switch = None
            for i in range(1, 3):
                guard.decide(mk_stats(), float(i), DummyNet())
            assert registry.gauge_value("guard.quarantined") == 0
            assert registry.gauge_value("guard.state", switch="leaf0") == 0.0
        finally:
            obs.disable()

    def test_no_registry_no_crash(self):
        from repro import obs
        assert not obs.enabled()
        guard = ResilientController(CrashingController("leaf0"), SWITCHES)
        guard.decide(mk_stats(), 0.0, DummyNet())   # null-object path
        assert guard.quarantined() == ["leaf0"]


class TestGuardMisc:
    def test_needs_switches(self):
        with pytest.raises(ValueError):
            ResilientController(RecordingController(), [])

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GuardConfig(probation_intervals=0)
        with pytest.raises(ValueError):
            GuardConfig(backoff_factor=0.5)
        with pytest.raises(ValueError):
            GuardConfig(probation_intervals=10, max_probation_intervals=5)

    def test_delegation(self):
        inner = RecordingController()
        guard = ResilientController(inner, SWITCHES)
        guard.set_training(True)
        assert inner.training is True
        assert guard.result == {}      # __getattr__ reaches the inner

    def test_health_report(self):
        guard = ResilientController(CrashingController("leaf0"), SWITCHES)
        guard.decide(mk_stats(), 0.0, DummyNet())
        report = guard.health_report()
        assert report["leaf0"]["state"] == "quarantined"
        assert report["leaf0"]["crashes"] == 1
        assert report["leaf1"]["state"] == "healthy"


class TestGuardedRunEndToEnd:
    """The acceptance scenario: agent crash + NaN telemetry mid-run."""

    def _net(self):
        cfg = FluidConfig(n_spine=2, n_leaf=2, hosts_per_leaf=2,
                          host_rate_bps=10e9, spine_rate_bps=40e9)
        return FluidNetwork(cfg, seed=0)

    def _plan(self):
        return (FaultPlan()
                .agent_crash("leaf0", 0.005, 0.012)
                .corrupt("leaf1", 0.008, 0.015, value=float("nan")))

    def test_unguarded_run_dies_on_agent_crash(self):
        net = self._net()
        chaos = ChaosInjector(net, self._plan())
        controller = chaos.wrap(StaticECNController(SECN1))
        chaos.arm()
        try:
            with pytest.raises(AgentCrashError):
                run_control_loop(net, controller, intervals=30,
                                 delta_t=1e-3, chaos=chaos)
        finally:
            chaos.disarm()

    def test_guarded_run_completes_and_recovers(self):
        net = self._net()
        chaos = ChaosInjector(net, self._plan())
        pet = PETController(net.switch_names(), PETConfig(seed=0))
        pet.set_training(True)
        guard = ResilientController(chaos.wrap(pet), net.switch_names(),
                                    GuardConfig(probation_intervals=3),
                                    log=chaos.log)
        chaos.arm()
        try:
            result = run_control_loop(net, guard, intervals=30,
                                      delta_t=1e-3, chaos=chaos)
        finally:
            chaos.disarm()
        assert result.intervals == 30
        assert math.isfinite(result.mean_reward)
        kinds = set(e.kind for e in result.faults)
        assert {"agent-crash", "quarantine", "reinstate",
                "telemetry-corrupt"} <= kinds
        # the quarantined switch ran the safe static config meanwhile
        crash_events = [e for e in result.faults if e.kind == "quarantine"]
        assert all(e.switch == "leaf0" for e in crash_events)
        assert guard.quarantined() == []          # reinstated by the end
        # ground-truth telemetry stayed finite (corruption only poisoned
        # the controller-visible copy)
        assert all(np.isfinite(v)
                   for v in result.rewards_per_switch.values())
