"""Behavioural tests on the learners: effects of key hyperparameters."""

import numpy as np
import pytest

from repro.rl.ppo import PPOAgent, PPOConfig


def _train_bandit(agent, rng, iters=40, batch=64, n_obs=3):
    """Contextual bandit: reward 1 iff action == argmax(obs)."""
    for _ in range(iters):
        for _ in range(batch):
            obs = rng.normal(size=n_obs)
            d = agent.act(obs)
            r = 1.0 if d["action"] == int(np.argmax(obs)) else 0.0
            agent.record(obs, d["action"], r, True, d["log_prob"],
                         d["value"])
        agent.update()


class TestEntropyCoefficient:
    def test_high_entropy_keeps_policy_flatter(self):
        rng = np.random.default_rng(0)
        sharp = PPOAgent(PPOConfig(obs_dim=3, n_actions=3, hidden=(16, 16),
                                   seed=1, actor_lr=5e-3, critic_lr=5e-3,
                                   entropy_coef=0.0))
        flat = PPOAgent(PPOConfig(obs_dim=3, n_actions=3, hidden=(16, 16),
                                  seed=1, actor_lr=5e-3, critic_lr=5e-3,
                                  entropy_coef=0.5))
        _train_bandit(sharp, np.random.default_rng(2))
        _train_bandit(flat, np.random.default_rng(2))
        obs = rng.normal(size=(20, 3))
        h_sharp = float(sharp.policy.entropy(obs).mean())
        h_flat = float(flat.policy.entropy(obs).mean())
        assert h_flat > h_sharp


class TestClipping:
    def test_clip_fraction_reported_and_bounded(self):
        agent = PPOAgent(PPOConfig(obs_dim=2, n_actions=3, hidden=(8, 8),
                                   seed=0, epochs=8, actor_lr=1e-2))
        rng = np.random.default_rng(1)
        for _ in range(64):
            obs = rng.normal(size=2)
            d = agent.act(obs)
            agent.record(obs, d["action"], rng.normal(), True,
                         d["log_prob"], d["value"])
        stats = agent.update()
        assert 0.0 <= stats["clip_frac"] <= 1.0
        # with many epochs at a high lr the policy moves enough to clip
        assert np.isfinite(stats["approx_kl"])

    def test_tighter_clip_slows_policy_drift(self):
        def drift(clip):
            # identical transitions: advantage normalization would zero
            # them out, so use raw advantages for this probe
            agent = PPOAgent(PPOConfig(obs_dim=2, n_actions=3,
                                       hidden=(8, 8), seed=3, epochs=10,
                                       actor_lr=1e-2, clip_eps=clip,
                                       entropy_coef=0.0,
                                       normalize_advantages=False))
            obs = np.ones(2)
            p_before = agent.policy.probs(obs)[0].copy()
            logp = float(np.log(p_before[0]))
            for _ in range(32):
                agent.record(obs, 0, 1.0, True, logp, 0.0)
            agent.update()
            p_after = agent.policy.probs(obs)[0]
            return abs(p_after[0] - p_before[0])

        assert drift(0.05) < drift(0.5)


class TestValueFunction:
    def test_gamma_zero_learns_immediate_reward(self):
        agent = PPOAgent(PPOConfig(obs_dim=2, n_actions=2, hidden=(16, 16),
                                   seed=4, gamma=0.0, critic_lr=1e-2))
        rng = np.random.default_rng(5)
        # reward equals obs[0]; critic should regress onto it
        for _ in range(50):
            for _ in range(32):
                obs = rng.uniform(-1, 1, size=2)
                d = agent.act(obs)
                agent.record(obs, d["action"], float(obs[0]), True,
                             d["log_prob"], d["value"])
            agent.update()
        for x in (-0.8, 0.0, 0.8):
            v = agent.value(np.array([x, 0.0]))
            assert v == pytest.approx(x, abs=0.25)


class TestDeterminism:
    def test_same_seed_same_training_trajectory(self):
        def run():
            agent = PPOAgent(PPOConfig(obs_dim=2, n_actions=3,
                                       hidden=(8, 8), seed=7))
            rng = np.random.default_rng(8)
            _train_bandit(agent, rng, iters=5, batch=16, n_obs=2)
            return agent.policy.probs(np.ones(2))[0]

        np.testing.assert_allclose(run(), run())
