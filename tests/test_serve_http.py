"""End-to-end HTTP tests: a real ThreadingHTTPServer on an ephemeral
port, driven with urllib — no test client shims."""

import json
import urllib.error
import urllib.request

import pytest

from repro.netsim.fluid import FluidConfig, FluidNetwork
from repro.serve.backoff import RetryPolicy
from repro.serve.gate import GateConfig, PromotionGate
from repro.serve.plane import ControlPlane, ServeConfig
from repro.serve.server import PolicyServer
from repro.serve.supervisor import Supervisor


def _tiny_factory():
    return FluidNetwork(FluidConfig(n_spine=1, n_leaf=2, hosts_per_leaf=2,
                                    host_rate_bps=10e9,
                                    spine_rate_bps=40e9), seed=0)


def _request(url, payload=None, timeout=5.0):
    """(status, body) for one JSON round-trip; 4xx/5xx don't raise."""
    data = None if payload is None else json.dumps(payload).encode()
    req = urllib.request.Request(
        url, data=data,
        headers={"Content-Type": "application/json"} if data else {})
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read() or b"{}")


@pytest.fixture()
def served():
    plane = ControlPlane(
        _tiny_factory,
        config=ServeConfig(
            degraded_hold_ticks=3,
            telemetry_retry=RetryPolicy(attempts=2, base_delay_s=0.0)),
        gate=PromotionGate(GateConfig(min_shadow_ticks=1, canary_ticks=50,
                                      eval_min_ticks=2, cooldown_ticks=5,
                                      window_ticks=10)))
    plane.sleep = lambda _s: None
    server = PolicyServer(plane, host="127.0.0.1", port=0).start()
    try:
        yield plane, server
    finally:
        server.stop()
        plane.close()


class TestEndpoints:
    def test_health_always_200(self, served):
        plane, server = served
        status, body = _request(f"{server.url}/health")
        assert status == 200
        assert body["status"] == "starting"
        assert body["incumbent"] == "static"

    def test_ready_is_503_until_first_tick(self, served):
        plane, server = served
        status, body = _request(f"{server.url}/ready")
        assert status == 503
        assert body["ready"] is False
        plane.tick()
        status, body = _request(f"{server.url}/ready")
        assert status == 200
        assert body["ready"] is True

    def test_state_snapshot_shape(self, served):
        plane, server = served
        plane.tick()
        status, body = _request(f"{server.url}/state")
        assert status == 200
        assert body["applied_by"]["incumbent"] == 1
        assert "static" in body["registry"]["policies"]
        assert set(body["gate"]) >= {"min_shadow_ticks", "canary_ticks"}
        assert body["queues"]                  # per-switch stats present

    def test_unknown_path_404(self, served):
        _, server = served
        status, body = _request(f"{server.url}/nope")
        assert status == 404
        assert "error" in body

    def test_action_applies_and_validates(self, served):
        plane, server = served
        status, body = _request(f"{server.url}/action",
                                {"switch": "*", "kmin_bytes": 5_000,
                                 "kmax_bytes": 50_000, "pmax": 0.1})
        assert status == 200
        assert plane.applied_by["manual"] == 1
        status, body = _request(f"{server.url}/action",
                                {"switch": "*", "kmin_bytes": 5_000})
        assert status == 400 and "error" in body
        status, body = _request(f"{server.url}/action",
                                {"switch": "ghost", "kmin_bytes": 5_000,
                                 "kmax_bytes": 50_000})
        assert status == 400 and "unknown switch" in body["error"]

    def test_bad_json_is_400_not_500(self, served):
        _, server = served
        req = urllib.request.Request(
            f"{server.url}/action", data=b"{not json",
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(req, timeout=5.0) as resp:
                status = resp.status
        except urllib.error.HTTPError as exc:
            status = exc.code
        assert status == 400

    def test_reset_endpoint(self, served):
        plane, server = served
        old_net = plane.net
        status, body = _request(f"{server.url}/reset", {})
        assert status == 200 and body["reset"] is True
        assert plane.net is not old_net


class TestRolloutOps:
    def test_register_promote_rollback_over_http(self, served):
        plane, server = served
        status, body = _request(
            f"{server.url}/rollout",
            {"op": "register", "name": "pet0", "scheme": "pet", "seed": 0})
        assert status == 200
        assert body["stage"] == "shadow"

        # Not eligible yet (no clean streak) — a clean 400, not a 500.
        status, body = _request(f"{server.url}/rollout",
                                {"op": "promote", "name": "pet0"})
        assert status == 400 and "clean shadow" in body["error"]

        plane.run_ticks(3)                     # builds the streak
        status, body = _request(f"{server.url}/rollout",
                                {"op": "promote", "name": "pet0"})
        assert status == 200
        assert body["stage"] == "canary"

        status, body = _request(f"{server.url}/rollout", {"op": "status"})
        assert status == 200
        assert body["canary"] == "pet0"

    def test_register_validates(self, served):
        _, server = served
        status, body = _request(f"{server.url}/rollout",
                                {"op": "register", "name": "x"})
        assert status == 400 and "scheme" in body["error"]
        status, body = _request(f"{server.url}/rollout",
                                {"op": "register", "name": "x",
                                 "scheme": "not-a-scheme"})
        assert status == 400
        status, body = _request(f"{server.url}/rollout", {"op": "warp"})
        assert status == 400 and "unknown rollout op" in body["error"]

    def test_demote_over_http(self, served):
        plane, server = served
        status, body = _request(f"{server.url}/rollout",
                                {"op": "demote", "reason": "drill"})
        assert status == 200
        assert body["name"] == "static"        # static floor: no-op demote


class TestSupervisedServer:
    def test_health_includes_supervisor_status(self):
        plane = ControlPlane(_tiny_factory, config=ServeConfig())
        plane.sleep = lambda _s: None
        sup = Supervisor(plane, tick_sleep_s=0.001,
                         watchdog_interval_s=0.01).start()
        server = PolicyServer(plane, sup, host="127.0.0.1", port=0).start()
        try:
            import time
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                status, body = _request(f"{server.url}/health")
                if body.get("status") == "ready":
                    break
                time.sleep(0.01)
            assert body["status"] == "ready"
            assert body["supervisor"]["running"] is True
            assert body["supervisor"]["restarts"] == 0
        finally:
            sup.stop()
            server.stop()
            plane.close()
