"""Unit tests for the serve building blocks: backoff, buffered writes,
the policy lifecycle registry, the promotion gate, and deadline decides."""

import threading
import time

import pytest

from repro.netsim.ecn import ECNConfig
from repro.serve.backoff import RetryExhausted, RetryPolicy, retry_call
from repro.serve.deadline import DeadlineDecider
from repro.serve.gate import (GateConfig, MetricWindow, PromotionGate,
                              WindowSummary)
from repro.serve.lifecycle import (BufferedNetwork, LifecycleError,
                                   PolicyRegistry)


# --------------------------------------------------------------------- backoff
class TestRetry:
    def test_succeeds_first_try(self):
        assert retry_call(lambda: 42, policy=RetryPolicy()) == 42

    def test_retries_then_succeeds(self):
        calls = {"n": 0}
        slept = []

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise OSError("transient")
            return "ok"

        out = retry_call(flaky, policy=RetryPolicy(attempts=3),
                         sleep=slept.append)
        assert out == "ok"
        assert calls["n"] == 3
        assert len(slept) == 2
        assert slept[1] > slept[0]          # exponential backoff

    def test_exhaustion_raises_with_last_error(self):
        def dead():
            raise ValueError("always")

        with pytest.raises(RetryExhausted) as ei:
            retry_call(dead, policy=RetryPolicy(attempts=2),
                       sleep=lambda _: None)
        assert ei.value.attempts == 2
        assert isinstance(ei.value.last, ValueError)

    def test_non_matching_exception_propagates_immediately(self):
        calls = {"n": 0}

        def typed():
            calls["n"] += 1
            raise KeyError("not retryable")

        with pytest.raises(KeyError):
            retry_call(typed, policy=RetryPolicy(attempts=5),
                       retry_on=(OSError,), sleep=lambda _: None)
        assert calls["n"] == 1

    def test_delay_capped(self):
        p = RetryPolicy(attempts=10, base_delay_s=1.0, factor=10.0,
                        max_delay_s=2.5)
        assert p.delay(5) == 2.5


# ----------------------------------------------------------- buffered network
class _FakeNet:
    def __init__(self):
        self.now = 1.5
        self.applied = []

    def set_ecn(self, switch, config):
        self.applied.append((switch, config))

    def set_ecn_all(self, config):
        self.applied.append(("*", config))

    def switch_names(self):
        return ["s0", "s1"]


class TestBufferedNetwork:
    def test_writes_buffer_and_reads_pass_through(self):
        net = _FakeNet()
        buf = BufferedNetwork(net)
        cfg = ECNConfig(1000, 2000, 0.1)
        buf.set_ecn("s0", cfg)
        buf.set_ecn_all(cfg)
        assert net.applied == []             # nothing reached the fabric
        assert buf.now == 1.5                # reads delegate
        assert buf.switch_names() == ["s0", "s1"]
        assert buf.buffered == [("s0", cfg), (None, cfg)]

    def test_flush_applies_in_order(self):
        net = _FakeNet()
        buf = BufferedNetwork(net)
        a, b = ECNConfig(1, 2, 0.1), ECNConfig(3, 4, 0.2)
        buf.set_ecn("s1", a)
        buf.set_ecn_all(b)
        n = buf.flush()
        assert n == 2
        assert net.applied == [("s1", a), ("*", b)]

    def test_dropped_buffer_never_mutates(self):
        net = _FakeNet()
        buf = BufferedNetwork(net)
        buf.set_ecn("s0", ECNConfig(1, 2, 0.1))
        del buf
        assert net.applied == []


# ---------------------------------------------------------------- registry
def _registry():
    return PolicyRegistry(static_controller=object())


class TestPolicyRegistry:
    def test_static_is_initial_incumbent(self):
        reg = _registry()
        assert reg.incumbent_name == PolicyRegistry.STATIC
        assert reg.incumbent.stage == "promoted"

    def test_register_starts_in_shadow(self):
        reg = _registry()
        rec = reg.register("p", object(), tick=3)
        assert rec.stage == "shadow"
        assert rec.registered_tick == 3
        assert reg.shadows() == [rec]

    def test_register_rejects_duplicates_and_bad_names(self):
        reg = _registry()
        reg.register("p", object(), tick=0)
        with pytest.raises(LifecycleError):
            reg.register("p", object(), tick=1)
        with pytest.raises(LifecycleError):
            reg.register("a/b", object(), tick=1)

    def test_promotion_requires_clean_streak(self):
        reg = _registry()
        rec = reg.register("p", object(), tick=0)
        ok, reason = reg.eligible("p", min_shadow_ticks=5, tick=10)
        assert not ok and "clean shadow" in reason
        with pytest.raises(LifecycleError):
            reg.promote_to_canary("p", tick=10, min_shadow_ticks=5)
        rec.clean_streak = 5
        reg.promote_to_canary("p", tick=10, min_shadow_ticks=5)
        assert reg.canary_name == "p"
        assert rec.stage == "canary"

    def test_single_canary_slot(self):
        reg = _registry()
        a = reg.register("a", object(), tick=0)
        b = reg.register("b", object(), tick=0)
        a.clean_streak = b.clean_streak = 99
        reg.promote_to_canary("a", tick=1, min_shadow_ticks=1)
        with pytest.raises(LifecycleError):
            reg.promote_to_canary("b", tick=1, min_shadow_ticks=1)

    def test_rollback_sets_cooldown_and_blocks_repromotion(self):
        reg = _registry()
        rec = reg.register("p", object(), tick=0)
        rec.clean_streak = 10
        reg.promote_to_canary("p", tick=5, min_shadow_ticks=1)
        back = reg.rollback_canary(tick=10, cooldown_ticks=20, reason="gate")
        assert back is rec
        assert rec.stage == "shadow"
        assert rec.cooldown_until == 30
        assert rec.clean_streak == 0
        assert rec.rollbacks == 1
        assert reg.canary_name is None
        rec.clean_streak = 99
        ok, reason = reg.eligible("p", min_shadow_ticks=1, tick=29)
        assert not ok and "cooling down" in reason
        ok, _ = reg.eligible("p", min_shadow_ticks=1, tick=30)
        assert ok

    def test_complete_promotion_retires_old_incumbent(self):
        reg = _registry()
        a = reg.register("a", object(), tick=0)
        a.clean_streak = 9
        reg.promote_to_canary("a", tick=1, min_shadow_ticks=1)
        reg.complete_promotion(tick=2)
        assert reg.incumbent_name == "a"
        assert a.stage == "promoted"
        # static stays "promoted" (it is the permanent floor), not retired
        assert reg.records[PolicyRegistry.STATIC].stage == "promoted"
        assert reg.previous_incumbent == PolicyRegistry.STATIC

        b = reg.register("b", object(), tick=3)
        b.clean_streak = 9
        reg.promote_to_canary("b", tick=4, min_shadow_ticks=1)
        reg.complete_promotion(tick=5)
        assert a.stage == "retired"
        assert reg.previous_incumbent == "a"

    def test_demote_incumbent_falls_back_to_static(self):
        reg = _registry()
        a = reg.register("a", object(), tick=0)
        a.clean_streak = 9
        reg.promote_to_canary("a", tick=1, min_shadow_ticks=1)
        reg.complete_promotion(tick=2)
        reg.demote_incumbent(tick=10, cooldown_ticks=5, reason="strikes")
        assert reg.incumbent_name == PolicyRegistry.STATIC
        assert a.stage == "shadow"
        # demoting the static floor is a no-op
        rec = reg.demote_incumbent(tick=11, cooldown_ticks=5, reason="again")
        assert rec.name == PolicyRegistry.STATIC
        assert reg.incumbent_name == PolicyRegistry.STATIC

    def test_suspend_blocks_static(self):
        reg = _registry()
        reg.register("p", object(), tick=0)
        reg.suspend("p", reason="wedged")
        assert reg.records["p"].stage == "suspended"
        with pytest.raises(LifecycleError):
            reg.suspend(PolicyRegistry.STATIC, reason="no")

    def test_snapshot_is_json_safe(self):
        import json
        reg = _registry()
        reg.register("p", object(), tick=0)
        json.dumps(reg.snapshot())


# -------------------------------------------------------------------- gate
def _summary(ticks=50, queue=10_000.0, util=0.5, fct=1e-3, n_fct=100):
    return WindowSummary(ticks=ticks, queue_mean_bytes=queue, util_mean=util,
                         fct_mean_s=fct, fct_count=n_fct)


class TestPromotionGate:
    def test_no_verdict_before_min_samples(self):
        gate = PromotionGate(GateConfig(eval_min_ticks=10))
        d = gate.evaluate(_summary(), _summary(ticks=5, queue=1e9))
        assert not d.breach

    def test_clean_canary_passes(self):
        gate = PromotionGate(GateConfig(eval_min_ticks=5))
        d = gate.evaluate(_summary(), _summary(ticks=20))
        assert not d.breach and d.reasons == []

    def test_queue_regression_breaches(self):
        gate = PromotionGate(GateConfig(eval_min_ticks=5,
                                        queue_tolerance=0.25,
                                        queue_slack_bytes=0.0))
        d = gate.evaluate(_summary(queue=10_000.0),
                          _summary(ticks=20, queue=13_000.0))
        assert d.breach
        assert any("queue" in r for r in d.reasons)

    def test_fct_regression_breaches(self):
        gate = PromotionGate(GateConfig(eval_min_ticks=5, fct_tolerance=0.25,
                                        fct_slack_s=0.0))
        d = gate.evaluate(_summary(fct=1e-3),
                          _summary(ticks=20, fct=2e-3))
        assert d.breach
        assert any("fct" in r for r in d.reasons)

    def test_fct_skipped_when_no_flows(self):
        gate = PromotionGate(GateConfig(eval_min_ticks=5, fct_tolerance=0.0,
                                        fct_slack_s=0.0))
        d = gate.evaluate(_summary(fct=None, n_fct=0),
                          _summary(ticks=20, fct=10.0))
        assert not d.breach

    def test_util_drop_breaches(self):
        gate = PromotionGate(GateConfig(eval_min_ticks=5,
                                        util_tolerance=0.10))
        d = gate.evaluate(_summary(util=0.8), _summary(ticks=20, util=0.5))
        assert d.breach
        assert any("utilization" in r for r in d.reasons)

    def test_empty_baseline_never_breaches(self):
        gate = PromotionGate(GateConfig(eval_min_ticks=1))
        d = gate.evaluate(WindowSummary(), _summary(ticks=20, queue=1e12))
        assert not d.breach

    def test_queue_slack_absorbs_near_zero_baseline(self):
        gate = PromotionGate(GateConfig(eval_min_ticks=1,
                                        queue_slack_bytes=5_000.0))
        d = gate.evaluate(_summary(queue=0.0),
                          _summary(ticks=20, queue=4_000.0))
        assert not d.breach


class TestMetricWindow:
    def test_rolling_capacity(self):
        w = MetricWindow(capacity=3)
        for i in range(5):
            w.push(queue_mean_bytes=float(i), util_mean=0.5)
        s = w.summary()
        assert s.ticks == 3
        assert s.queue_mean_bytes == pytest.approx((2 + 3 + 4) / 3)
        assert s.fct_mean_s is None

    def test_fct_mean_weights_flows_not_ticks(self):
        w = MetricWindow(capacity=10)
        w.push(queue_mean_bytes=0, util_mean=0, fcts_s=[1.0])
        w.push(queue_mean_bytes=0, util_mean=0, fcts_s=[3.0, 3.0, 3.0])
        s = w.summary()
        assert s.fct_count == 4
        assert s.fct_mean_s == pytest.approx(10.0 / 4)


# ------------------------------------------------------------------ deadline
class TestDeadlineDecider:
    def test_on_time_result(self):
        d = DeadlineDecider()
        out = d.submit(lambda a, b: a + b, 2, 3, budget_s=1.0)
        assert out.ok and out.value == 5
        d.close()

    def test_exception_captured(self):
        d = DeadlineDecider()

        def boom():
            raise RuntimeError("inside decide")

        out = d.submit(boom, budget_s=1.0)
        assert out.status == "error"
        assert isinstance(out.error, RuntimeError)
        d.close()

    def test_timeout_and_worker_replacement(self):
        d = DeadlineDecider(max_replacements=4)
        release = threading.Event()
        out = d.submit(release.wait, budget_s=0.05)
        assert out.status == "timeout"
        # The wedged worker is replaced; the next submit still works.
        out2 = d.submit(lambda: "alive", budget_s=1.0)
        assert out2.ok and out2.value == "alive"
        assert d.replacements == 1
        release.set()
        d.close()

    def test_late_result_never_leaks_into_next_submit(self):
        d = DeadlineDecider()
        gate = threading.Event()

        def slow():
            gate.wait(2.0)
            return "stale"

        assert d.submit(slow, budget_s=0.05).status == "timeout"
        gate.set()
        time.sleep(0.05)                     # let the stale decide finish
        out = d.submit(lambda: "fresh", budget_s=1.0)
        assert out.ok and out.value == "fresh"
        d.close()

    def test_exhaustion_after_repeated_wedges(self):
        d = DeadlineDecider(max_replacements=2)
        events = []
        for _ in range(4):
            ev = threading.Event()
            events.append(ev)
            out = d.submit(ev.wait, budget_s=0.02)
            if out.status == "exhausted":
                break
        assert d.exhausted
        assert d.submit(lambda: 1, budget_s=1.0).status == "exhausted"
        for ev in events:
            ev.set()
        d.close()

    def test_rejects_non_positive_budget(self):
        d = DeadlineDecider()
        with pytest.raises(ValueError):
            d.submit(lambda: 1, budget_s=0.0)
        d.close()
