"""Control-plane behaviour: the lifecycle invariants under chaos.

The headline test proves the acceptance property end to end: with a
chaos plan active, a shadow policy's proposed actions are recorded but
NEVER applied to the fabric, a deadline breach triggers the static
fallback in the same tick, a gate breach rolls the canary back
automatically, and all of it is visible in the health snapshot and the
obs event stream.
"""

import math
import time

import pytest

from repro import obs
from repro.netsim.ecn import ECNConfig
from repro.netsim.fluid import FluidConfig, FluidNetwork
from repro.resilience.faults import ChaosInjector, FaultPlan
from repro.rl.checkpoint import CheckpointManager
from repro.serve.backoff import RetryPolicy
from repro.serve.gate import (GateConfig, GateDecision, PromotionGate,
                              WindowSummary)
from repro.serve.lifecycle import PolicyRegistry
from repro.serve.plane import ControlPlane, ServeConfig
from repro.serve.supervisor import Supervisor

#: sentinel Kmin no real scheme would propose — greppable in proposals.
SENTINEL_KMIN = 77_777


def tiny_factory():
    return FluidNetwork(FluidConfig(n_spine=1, n_leaf=2, hosts_per_leaf=2,
                                    host_rate_bps=10e9,
                                    spine_rate_bps=40e9), seed=0)


def fast_gate(**over):
    base = dict(min_shadow_ticks=2, canary_ticks=1000, eval_min_ticks=2,
                cooldown_ticks=5, window_ticks=10,
                canary_requires_ready=False)
    base.update(over)
    return PromotionGate(GateConfig(**base))


def fast_config(**over):
    base = dict(decide_budget_s=0.5, degraded_hold_ticks=3,
                reload_every_ticks=0,
                telemetry_retry=RetryPolicy(attempts=3, base_delay_s=0.0),
                reload_retry=RetryPolicy(attempts=3, base_delay_s=0.0))
    base.update(over)
    return ServeConfig(**base)


def make_plane(chaos_factory=None, gate=None, config=None):
    plane = ControlPlane(tiny_factory, config=config or fast_config(),
                         gate=gate or fast_gate(),
                         chaos_factory=chaos_factory)
    plane.sleep = lambda _s: None            # retries never wall-sleep
    return plane


class SentinelController:
    """Proposes an unmistakable config for every switch, every tick."""

    def __init__(self, kmin=SENTINEL_KMIN):
        self.cfg = ECNConfig(kmin, kmin + 1_000, 0.5)
        self.decides = 0

    def set_training(self, training):
        pass

    def decide(self, stats, now, network):
        self.decides += 1
        for s in stats:
            network.set_ecn(s, self.cfg)
        return {s: self.cfg for s in stats}


class SlowController(SentinelController):
    """Overruns any reasonable decide budget."""

    def __init__(self, sleep_s=0.2):
        super().__init__()
        self.sleep_s = sleep_s

    def decide(self, stats, now, network):
        time.sleep(self.sleep_s)
        return super().decide(stats, now, network)


def spy_writes(plane):
    """Intercept the real fabric's actuator surface; returns the log."""
    applied = []
    net = plane.net
    orig_set, orig_all = net.set_ecn, net.set_ecn_all

    def set_ecn(switch, config):
        applied.append((switch, config))
        return orig_set(switch, config)

    def set_ecn_all(config):
        applied.append(("*", config))
        return orig_all(config)

    net.set_ecn = set_ecn
    net.set_ecn_all = set_ecn_all
    return applied


# ----------------------------------------------------------- the invariant
class TestShadowInvariantUnderChaos:
    def test_shadow_actions_never_reach_fabric(self):
        def chaos_factory(net):
            sw = sorted(net.switch_names())
            plan = (FaultPlan()
                    .agent_crash(sw[0], 0.005, 0.015)
                    .corrupt(sw[1 % len(sw)], 0.006, 0.012,
                             value=float("nan")))
            return ChaosInjector(net, plan)

        registry, tracer = obs.enable()
        try:
            plane = make_plane(chaos_factory=chaos_factory)
            applied = spy_writes(plane)
            shadow = SentinelController()
            plane.register("sentinel", shadow)
            states = []
            for _ in range(40):
                plane.tick()
                states.append(plane.health)

            # The shadow decided and proposed — visibly.
            rec = plane.registry.records["sentinel"]
            assert shadow.decides > 0
            assert rec.shadow_ticks > 0
            assert any(kmin == SENTINEL_KMIN
                       for _, _, kmin, _, _ in rec.proposal_log)

            # ...but not one proposal reached the fabric.
            assert all(cfg.kmin_bytes != SENTINEL_KMIN
                       for _, cfg in applied)
            assert "shadow" not in plane.applied_by
            assert plane.applied_by["canary"] == 0

            # Chaos really fired, and health said so before recovering.
            assert registry.counter_value("faults", kind="agent-crash") > 0
            assert "degraded" in states
            assert states[-1] == "ready"

            # All of it is on the obs event stream.
            names = tracer.names()
            assert "serve.register" in names
            assert any(n.startswith("fault.") for n in names)
            snap = plane.health_snapshot()
            assert snap["status"] == "ready"
            assert snap["last_fault_tick"] is not None
            plane.close()
        finally:
            obs.disable()


# ------------------------------------------------------- deadline fallback
class TestDeadlineFallback:
    def test_breach_applies_static_fallback_same_tick(self):
        plane = make_plane(config=fast_config(decide_budget_s=0.02))
        applied = spy_writes(plane)
        slow = SlowController(sleep_s=0.2)
        plane.register("slow", slow)
        plane.promote("slow", force=True)

        before = len(applied)
        out = plane.tick()
        assert out["acting"] == "fallback"
        # The very same tick wrote the safe config to the fabric.
        new = applied[before:]
        assert any(sw == "*" and cfg == plane.config.safe_ecn
                   for sw, cfg in new)
        assert plane.applied_by["fallback"] == 1
        rec = plane.registry.records["slow"]
        assert rec.breaches == 1
        assert plane.health == "degraded"
        plane.close()

    def test_three_strikes_rolls_canary_back(self):
        plane = make_plane(config=fast_config(decide_budget_s=0.02))
        plane.register("slow", SlowController(sleep_s=0.2))
        plane.promote("slow", force=True)
        for _ in range(3):
            plane.tick()
        rec = plane.registry.records["slow"]
        assert rec.stage == "shadow"          # rolled back
        assert rec.rollbacks == 1
        assert rec.cooldown_until > 0
        assert plane.registry.canary_name is None
        assert plane.rollbacks_total == 1
        # The incumbent (static) is acting again.
        out = plane.tick()
        assert out["acting"] in ("incumbent", "fallback")
        plane.close()

    def test_three_strikes_demotes_incumbent_to_static(self):
        plane = make_plane(config=fast_config(decide_budget_s=0.02))
        plane.register("slow", SlowController(sleep_s=0.2))
        plane.promote("slow", force=True)
        plane.registry.complete_promotion(tick=0)
        assert plane.registry.incumbent_name == "slow"
        for _ in range(3):
            plane.tick()
        assert plane.registry.incumbent_name == PolicyRegistry.STATIC
        assert plane.registry.records["slow"].stage == "shadow"
        plane.close()


# ------------------------------------------------------------- gate actions
class _BreachingGate:
    def __init__(self):
        self.config = GateConfig(min_shadow_ticks=1, eval_min_ticks=1,
                                 cooldown_ticks=5, window_ticks=5,
                                 canary_requires_ready=False)

    def evaluate(self, baseline, canary):
        return GateDecision(breach=True, reasons=["stub: always regress"],
                            baseline=baseline, canary=canary)


class TestGateDrivenLifecycle:
    def test_gate_breach_rolls_back_automatically(self):
        plane = make_plane(gate=_BreachingGate())
        plane.register("good", SentinelController(kmin=10_000))
        plane.promote("good", force=True)
        plane.tick()
        rec = plane.registry.records["good"]
        assert rec.stage == "shadow"
        assert rec.rollbacks == 1
        assert "regress" in (rec.last_error or "")
        assert plane.last_gate_decision["breach"] is True
        plane.close()

    def test_surviving_canary_is_promoted(self):
        gate = fast_gate(canary_ticks=3, eval_min_ticks=100)
        plane = make_plane(gate=gate)
        plane.register("good", SentinelController(kmin=10_000))
        plane.promote("good", force=True)
        for _ in range(4):
            plane.tick()
        assert plane.registry.incumbent_name == "good"
        assert plane.registry.records["good"].stage == "promoted"
        assert plane.promotions_total == 1
        plane.close()

    def test_canary_benched_while_degraded_when_required(self):
        gate = fast_gate(canary_requires_ready=True)
        plane = make_plane(gate=gate)
        plane.register("good", SentinelController(kmin=10_000))
        plane.promote("good", force=True)
        plane.last_fault_tick = plane.tick_count   # simulate a live incident
        out = plane.tick()
        assert plane.health == "degraded"
        assert out["acting"] == "incumbent"        # not the canary
        assert plane.applied_by["canary"] == 0
        plane.close()


# --------------------------------------------------------- gate boundaries
class TestGateWindowBoundary:
    """Negative-path boundary semantics of the promotion gate: the gate
    withholds judgment until the canary window holds exactly
    ``eval_min_ticks`` samples, and every threshold is strict — a
    canary sitting *exactly* on a limit is not a breach."""

    BASELINE = WindowSummary(ticks=50, queue_mean_bytes=10_000.0,
                             util_mean=0.8, fct_mean_s=1e-3, fct_count=100)

    def _gate(self, **over):
        base = dict(eval_min_ticks=5, queue_tolerance=0.25,
                    queue_slack_bytes=1_000.0, fct_tolerance=0.25,
                    fct_slack_s=1e-4, util_tolerance=0.10)
        base.update(over)
        return PromotionGate(GateConfig(**base))

    def _terrible(self, ticks):
        return WindowSummary(ticks=ticks, queue_mean_bytes=1e9,
                             util_mean=0.0, fct_mean_s=10.0, fct_count=ticks)

    def test_no_judgment_one_tick_short_of_eval_min(self):
        decision = self._gate().evaluate(self.BASELINE, self._terrible(4))
        assert decision.breach is False
        assert decision.reasons == []

    def test_judgment_starts_exactly_at_eval_min(self):
        decision = self._gate().evaluate(self.BASELINE, self._terrible(5))
        assert decision.breach is True
        # all three thresholds are torched by the terrible window
        assert len(decision.reasons) == 3

    def test_queue_exactly_at_limit_is_not_a_breach(self):
        gate = self._gate()
        cfg = gate.config
        limit = (self.BASELINE.queue_mean_bytes * (1.0 + cfg.queue_tolerance)
                 + cfg.queue_slack_bytes)
        at = WindowSummary(ticks=5, queue_mean_bytes=limit, util_mean=0.8,
                           fct_mean_s=1e-3, fct_count=5)
        assert gate.evaluate(self.BASELINE, at).breach is False
        over = WindowSummary(ticks=5,
                             queue_mean_bytes=math.nextafter(limit,
                                                             math.inf),
                             util_mean=0.8, fct_mean_s=1e-3, fct_count=5)
        decision = gate.evaluate(self.BASELINE, over)
        assert decision.breach is True
        assert len(decision.reasons) == 1 and "queue" in decision.reasons[0]

    def test_fct_exactly_at_limit_is_not_a_breach(self):
        gate = self._gate()
        cfg = gate.config
        limit = (self.BASELINE.fct_mean_s * (1.0 + cfg.fct_tolerance)
                 + cfg.fct_slack_s)
        at = WindowSummary(ticks=5, queue_mean_bytes=10_000.0, util_mean=0.8,
                           fct_mean_s=limit, fct_count=5)
        assert gate.evaluate(self.BASELINE, at).breach is False
        over = WindowSummary(ticks=5, queue_mean_bytes=10_000.0,
                             util_mean=0.8,
                             fct_mean_s=math.nextafter(limit, math.inf),
                             fct_count=5)
        decision = gate.evaluate(self.BASELINE, over)
        assert decision.breach is True
        assert len(decision.reasons) == 1 and "fct" in decision.reasons[0]

    def test_util_exactly_at_floor_is_not_a_breach(self):
        gate = self._gate()
        cfg = gate.config
        floor = self.BASELINE.util_mean * (1.0 - cfg.util_tolerance)
        at = WindowSummary(ticks=5, queue_mean_bytes=10_000.0,
                           util_mean=floor, fct_mean_s=1e-3, fct_count=5)
        assert gate.evaluate(self.BASELINE, at).breach is False
        under = WindowSummary(ticks=5, queue_mean_bytes=10_000.0,
                              util_mean=math.nextafter(floor, -math.inf),
                              fct_mean_s=1e-3, fct_count=5)
        decision = gate.evaluate(self.BASELINE, under)
        assert decision.breach is True
        assert (len(decision.reasons) == 1
                and "utilization" in decision.reasons[0])

    def test_fct_skipped_when_no_flows_finished(self):
        # fct_mean_s None on either side disables only the FCT check.
        gate = self._gate()
        canary = WindowSummary(ticks=5, queue_mean_bytes=10_000.0,
                               util_mean=0.8, fct_mean_s=None, fct_count=0)
        assert gate.evaluate(self.BASELINE, canary).breach is False
        no_fct_baseline = WindowSummary(ticks=50, queue_mean_bytes=10_000.0,
                                        util_mean=0.8, fct_mean_s=None,
                                        fct_count=0)
        slow = WindowSummary(ticks=5, queue_mean_bytes=10_000.0,
                             util_mean=0.8, fct_mean_s=10.0, fct_count=5)
        assert gate.evaluate(no_fct_baseline, slow).breach is False


# --------------------------------------------------------- telemetry retry
class TestTelemetryRetry:
    def test_transient_failures_are_retried(self):
        plane = make_plane()
        calls = {"n": 0}
        orig = plane.net.queue_stats

        def flaky():
            calls["n"] += 1
            if calls["n"] <= 2:
                raise OSError("telemetry bus glitch")
            return orig()

        plane.net.queue_stats = flaky
        out = plane.tick()
        assert out["acting"] == "incumbent"
        assert plane.telemetry_failures == 0
        assert calls["n"] == 3
        plane.close()

    def test_dead_telemetry_is_a_fallback_tick(self):
        plane = make_plane()
        applied = spy_writes(plane)

        def dead():
            raise OSError("telemetry bus down")

        plane.net.queue_stats = dead
        out = plane.tick()
        assert out["acting"] is None
        assert plane.telemetry_failures == 1
        assert any(sw == "*" for sw, _ in applied)
        assert plane.health == "degraded"
        plane.close()


# ------------------------------------------------------------- hot reload
class _ReloadableController(SentinelController):
    def __init__(self):
        super().__init__(kmin=10_000)
        self.loaded = []

    def load_state_dict(self, state):
        self.loaded.append(state["tag"])


class TestHotReload:
    def test_reload_skips_torn_checkpoint_and_keeps_weights(self, tmp_path):
        mgr = CheckpointManager(str(tmp_path), keep=3)
        mgr.save({"tag": 1.0}, step=1)
        plane = make_plane()
        ctrl = _ReloadableController()
        plane.register("p", ctrl, checkpoints=mgr, loaded_step=1)

        # A newer checkpoint lands torn: truncated mid-write.
        mgr.save({"tag": 2.0}, step=2)
        path2 = dict(mgr.checkpoints())[2]
        with open(path2, "wb") as f:
            f.write(b"torn")
        plane.reload_policy("p")
        rec = plane.registry.records["p"]
        assert rec.loaded_step == 1            # old weights kept serving
        assert ctrl.loaded == []
        assert rec.reloads == 0

        # A complete newer checkpoint is picked up on the next poll.
        mgr.save({"tag": 3.0}, step=3)
        plane.reload_policy("p")
        assert rec.loaded_step == 3
        assert ctrl.loaded == [3.0]
        assert rec.reloads == 1
        assert rec.reload_failures == 0
        plane.close()

    def test_periodic_reload_runs_from_tick(self, tmp_path):
        mgr = CheckpointManager(str(tmp_path), keep=3)
        mgr.save({"tag": 5.0}, step=5)
        plane = make_plane(config=fast_config(reload_every_ticks=2))
        ctrl = _ReloadableController()
        plane.register("p", ctrl, checkpoints=mgr, loaded_step=None)
        plane.tick()                            # tick 0: no reload check
        plane.tick()
        plane.tick()                            # tick 2: reload fires
        assert plane.registry.records["p"].loaded_step == 5
        assert ctrl.loaded == [5.0]
        plane.close()


# ------------------------------------------------------------ shadow faults
class TestShadowSuspension:
    def test_persistently_slow_shadow_is_suspended(self):
        plane = make_plane(config=fast_config(decide_budget_s=0.02,
                                              shadow_max_strikes=2))
        plane.register("slow", SlowController(sleep_s=0.1))
        for _ in range(4):
            plane.tick()
        rec = plane.registry.records["slow"]
        assert rec.stage == "suspended"
        assert rec.faults >= 2
        plane.close()

    def test_out_of_bounds_shadow_proposal_is_a_fault(self):
        from repro.devtools.sanitize import ECN_KMAX_CEILING_BYTES
        plane = make_plane()
        bad = SentinelController()
        # Above the guard ceiling: constructible, but never applicable.
        bad.cfg = ECNConfig(10_000, 2 * ECN_KMAX_CEILING_BYTES, 0.5)
        plane.register("bad", bad)
        plane.tick()
        rec = plane.registry.records["bad"]
        assert rec.faults == 1
        assert rec.clean_streak == 0
        assert "out-of-bounds" in rec.last_error
        plane.close()


# ------------------------------------------------------------ manual + misc
class TestPlaneOps:
    def test_manual_action_bounds_checked(self):
        plane = make_plane()
        applied = spy_writes(plane)
        plane.manual_action(None, ECNConfig(5_000, 50_000, 0.1))
        assert plane.applied_by["manual"] == 1
        assert applied
        with pytest.raises(ValueError):
            plane.manual_action(None, ECNConfig(50_000, 5_000, 0.1))
        with pytest.raises(ValueError):
            plane.manual_action("no-such-switch",
                                ECNConfig(5_000, 50_000, 0.1))
        plane.close()

    def test_reset_rebuilds_fabric_keeps_registry(self):
        plane = make_plane()
        plane.register("p", SentinelController(kmin=10_000))
        plane.run_ticks(5)
        old_net = plane.net
        plane.reset()
        assert plane.net is not old_net
        assert "p" in plane.registry.records
        plane.tick()                            # still serves
        plane.close()

    def test_health_starts_starting_then_ready(self):
        plane = make_plane()
        assert plane.health == "starting"
        plane.tick()
        assert plane.health == "ready"
        plane.close()

    def test_snapshots_are_json_safe(self):
        import json
        plane = make_plane()
        plane.register("p", SentinelController(kmin=10_000))
        plane.run_ticks(2)
        json.dumps(plane.health_snapshot())
        json.dumps(plane.state_snapshot())
        plane.close()


# ------------------------------------------------------------- supervisor
class _CrashyPlane:
    """Stub plane whose tick dies on a scheduled set of calls."""

    def __init__(self, die_on=frozenset()):
        self.calls = 0
        self.die_on = set(die_on)
        self.failed_reason = None
        self.health = "ready"

    def tick(self):
        self.calls += 1
        if self.calls in self.die_on:
            raise RuntimeError(f"scripted death #{self.calls}")

    def mark_failed(self, reason):
        self.failed_reason = reason
        self.health = "failed"


def _wait_until(pred, timeout_s=5.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if pred():
            return True
        time.sleep(0.005)
    return False


class TestSupervisor:
    def test_watchdog_restarts_dead_rollout(self):
        plane = _CrashyPlane(die_on={3})
        sup = Supervisor(plane, tick_sleep_s=0.001, max_restarts=3,
                         watchdog_interval_s=0.01)
        sup.start()
        try:
            assert _wait_until(lambda: sup.restarts >= 1)
            assert _wait_until(lambda: plane.calls > 10)
            assert plane.failed_reason is None
            assert "scripted death" in sup.last_error
        finally:
            sup.stop()
        status = sup.status()
        assert status["restarts"] == 1
        assert status["ticks"] > 0

    def test_restart_budget_exhaustion_marks_failed(self):
        plane = _CrashyPlane(die_on=set(range(1, 100)))   # dies every tick
        sup = Supervisor(plane, tick_sleep_s=0.0, max_restarts=2,
                         watchdog_interval_s=0.005)
        sup.start()
        try:
            assert _wait_until(lambda: plane.failed_reason is not None)
            assert sup.restarts == 2
            assert "died" in plane.failed_reason
        finally:
            sup.stop()

    def test_stop_is_idempotent_and_joins(self):
        plane = _CrashyPlane()
        sup = Supervisor(plane, tick_sleep_s=0.001,
                         watchdog_interval_s=0.01).start()
        assert _wait_until(lambda: plane.calls > 0)
        sup.stop()
        sup.stop()
        assert not sup.status()["running"]
