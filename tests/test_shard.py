"""Sharded fat-tree fluid simulator (repro.netsim.shard).

The conformance gate for the spatial-decomposition contract:
``shards=N`` must be **bit-identical** to ``shards=1`` — same canonical
fingerprint over interval stats and final state — for any shard count,
for the Engine-parallel path, at production scale (>= 64 switches), and
under mid-run uplink failures.  Plus the splitmix64 routing regression
(PET007: builtin ``hash()`` is salt-dependent across interpreter runs)
and Hypothesis properties: the boundary exchange conserves
bytes-in-flight, and failure/reroute behaviour agrees sharded vs
monolithic.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.netsim.ecn import ECNConfig
from repro.netsim.fattree import FatTreeConfig
from repro.netsim.flow import Flow
from repro.netsim.routing import ecmp_hash, splitmix64
from repro.netsim.shard import ShardedFluidNetwork
from repro.parallel.perfbench import _fingerprint


# ------------------------------------------------------------- helpers
def _small():
    return FatTreeConfig.small()


def _load(net, cfg, n_flows=40, seed=5, spread=2e-3):
    rng = np.random.default_rng(seed)
    flows = []
    for i in range(n_flows):
        src, dst = rng.choice(cfg.n_hosts, size=2, replace=False)
        flows.append(Flow(i, f"h{src}", f"h{dst}",
                          int(rng.integers(50_000, 2_000_000)),
                          start_time=float(rng.uniform(0, spread))))
    net.start_flows(flows)


def _run_fp(cfg, shards, *, steps=150, n_flows=40, engine=None,
            fail_at=None, seed=3):
    """Canonical fingerprint of a driven run: per-interval stats plus the
    final queue/flow state."""
    net = ShardedFluidNetwork(cfg, shards=shards, seed=seed, engine=engine)
    net.set_ecn_all(ECNConfig(kmin_bytes=20_000, kmax_bytes=80_000,
                              pmax=0.2))
    _load(net, cfg, n_flows=n_flows)
    stats = []
    for k in range(steps):
        net._step(cfg.step_dt)
        if fail_at is not None and k == fail_at:
            net.fail_uplinks(0.25, rng=np.random.default_rng(99))
        if (k + 1) % 50 == 0:
            stats.append(net.queue_stats())
    flows = net.flow_table_state()
    return _fingerprint({"stats": stats, "q_len": net.q_len.copy(),
                         "rates": flows["f_rate"], "paths": flows["f_path"],
                         "alpha": flows["f_alpha"],
                         "finished": [(f.flow_id, f.finish_time)
                                      for f in net.finished_flows]})


# ------------------------------------------------------------- routing
class TestSplitmix64Routing:
    """Pinned values: the ECMP mix must never drift (and must never be
    the builtin, interpreter-salted ``hash()`` it replaced)."""

    def test_splitmix64_known_values(self):
        # reference outputs of the splitmix64 finalizer
        assert splitmix64(0) == 0xE220A8397B1DCDAF
        assert splitmix64(1) == 0x910A2DEC89025CC1
        assert splitmix64(1234567) == splitmix64(1234567)

    def test_ecmp_hash_pinned_choices(self):
        # regression pin: flow->path choices are part of every committed
        # fingerprint, so these exact values are load-bearing
        assert [ecmp_hash(f, 4) for f in range(8)] == [3, 1, 2, 1, 2, 2, 0, 3]
        assert ecmp_hash(1234567, 7) == splitmix64(1234567) % 7

    def test_ecmp_hash_is_uniform_enough(self):
        counts = np.bincount([ecmp_hash(f, 8) for f in range(4096)],
                             minlength=8)
        assert counts.min() > 0.7 * 4096 / 8

    def test_ecmp_hash_rejects_empty_choice_set(self):
        with pytest.raises(ValueError):
            ecmp_hash(1, 0)


# ------------------------------------------------------- conformance gate
class TestShardConformance:
    def test_shard_counts_are_bit_identical_small(self):
        cfg = _small()
        fps = {s: _run_fp(cfg, s) for s in (1, 2, 3)}
        assert fps[2] == fps[1] and fps[3] == fps[1]

    def test_shard4_bit_identical_at_production_scale(self):
        """The acceptance gate: a >=64-switch fat-tree, shards=4 vs 1."""
        cfg = FatTreeConfig.production_scale()
        assert cfg.n_switches >= 64
        fp1 = _run_fp(cfg, 1, steps=40, n_flows=120)
        fp4 = _run_fp(cfg, 4, steps=40, n_flows=120)
        assert fp4 == fp1

    def test_engine_parallel_path_is_bit_identical(self):
        from repro.parallel.engine import Engine
        cfg = _small()
        fp_inproc = _run_fp(cfg, 1)
        fp_engine = _run_fp(cfg, 3, engine=Engine(workers=2))
        assert fp_engine == fp_inproc

    def test_engine_arena_and_pickle_fallback_are_bit_identical(self):
        """The zero-copy arena and the pickled-payload fallback are two
        transports for the same bits: closing the arena mid-construction
        degrades to pickling without changing a single fingerprint."""
        from repro.parallel.engine import Engine, SharedArena
        if not SharedArena.available():   # pragma: no cover
            pytest.skip("multiprocessing.shared_memory unavailable")
        cfg = _small()
        engine = Engine(workers=2)

        arena_net = ShardedFluidNetwork(cfg, shards=3, seed=3,
                                        engine=engine)
        assert arena_net._arena is not None
        fallback_net = ShardedFluidNetwork(cfg, shards=3, seed=3,
                                           engine=engine)
        fallback_net.close()              # forces the pickle path
        assert fallback_net._arena is None

        fps = []
        for net in (arena_net, fallback_net):
            net.set_ecn_all(ECNConfig(kmin_bytes=20_000, kmax_bytes=80_000,
                                      pmax=0.2))
            _load(net, cfg, n_flows=40)
            for _ in range(60):
                net._step(cfg.step_dt)
            fps.append(_fingerprint({"q": net.q_len.copy(),
                                     **net.flow_table_state()}))
        arena_net.close()
        assert fps[0] == fps[1]

    def test_bit_identical_through_midrun_failures(self):
        cfg = _small()
        fp1 = _run_fp(cfg, 1, fail_at=40)
        fp3 = _run_fp(cfg, 3, fail_at=40)
        assert fp3 == fp1

    def test_subdomain_partition_is_shard_count_independent(self):
        cfg = _small()
        a = ShardedFluidNetwork(cfg, shards=1, seed=0)
        b = ShardedFluidNetwork(cfg, shards=3, seed=0)
        assert [(s.name, s.start, s.stop) for s in a.subdomains] == \
               [(s.name, s.start, s.stop) for s in b.subdomains]
        assert sum(len(g) for g in b.shard_groups) == len(b.subdomains)


# ------------------------------------------------------------- surface
class TestShardedNetworkSurface:
    def test_queue_inventory(self):
        cfg = _small()
        net = ShardedFluidNetwork(cfg, seed=0)
        per_pod = (cfg.hosts_per_pod
                   + cfg.edge_per_pod * cfg.agg_per_pod
                   + cfg.agg_per_pod * cfg.core_per_agg
                   + cfg.agg_per_pod * cfg.edge_per_pod)
        assert net.n_queues == cfg.n_pods * per_pod + cfg.n_core * cfg.n_pods
        assert len(net.switch_names()) == cfg.n_switches
        # every queue belongs to a valid switch
        assert net.q_switch.min() >= 0
        assert net.q_switch.max() == cfg.n_switches - 1

    def test_switch_id_roundtrip_and_keyerror(self):
        net = ShardedFluidNetwork(_small(), seed=0)
        for s, name in enumerate(net.switch_names()):
            assert net._switch_id(name) == s
        for bad in ("pod9.edge0", "pod0.edge9", "core99", "leaf0",
                    "pod0.eggs1", "podX.edge0"):
            with pytest.raises(KeyError, match="unknown switch"):
                net._switch_id(bad)

    def test_unknown_host_raises(self):
        net = ShardedFluidNetwork(_small(), seed=0)
        with pytest.raises(ValueError, match="unknown host"):
            net.start_flow(Flow(0, "h999", "h0", 1000))
        with pytest.raises(ValueError, match="unknown host"):
            net.start_flow(Flow(1, "nope", "h0", 1000))

    def test_shards_validation(self):
        cfg = _small()    # 3 subdomains
        with pytest.raises(ValueError):
            ShardedFluidNetwork(cfg, shards=0)
        with pytest.raises(ValueError, match="subdomains"):
            ShardedFluidNetwork(cfg, shards=4)

    def test_memory_report_covers_every_subdomain(self):
        net = ShardedFluidNetwork(_small(), shards=2, seed=0)
        rep = net.memory_report()
        assert set(rep) == {"pod0", "pod1", "core"}
        assert all(v["queue_bytes"] > 0 for v in rep.values())
        # flow tables live on the pods; the core plane owns no flows
        assert rep["pod0"]["flow_bytes"] > 0
        assert rep["pod1"]["flow_bytes"] > 0
        assert rep["core"]["flow_bytes"] == 0
        assert rep["pod0"]["flow_bytes"] == \
            net.flow_shards[0].flow_table_bytes()
        # attribution must add up to the whole fabric's queue state
        total_queues = sum(len(s) for s in net.subdomains)
        assert total_queues == net.n_queues

    def test_flow_ownership_follows_source_pod(self):
        cfg = _small()
        net = ShardedFluidNetwork(cfg, shards=2, seed=0)
        # h0 lives in pod0, h4 (second half) in pod1
        lo, hi = 0, cfg.hosts_per_pod
        net.start_flow(Flow(0, f"h{lo}", f"h{hi}", 10_000))
        net.start_flow(Flow(1, f"h{hi}", f"h{lo}", 10_000))
        net.advance(cfg.step_dt)
        assert net.flow_shards[0]._n_flows == 1
        assert net.flow_shards[1]._n_flows == 1
        assert int(net.flow_shards[0].f_src[0]) == lo
        assert int(net.flow_shards[1].f_src[0]) == hi
        # both flows cross pods: each pod emitted boundary aggregates
        assert net._last_boundary_rows > 0

    def test_set_ecn_reaches_only_that_switch(self):
        net = ShardedFluidNetwork(_small(), seed=0)
        net.set_ecn("pod1.agg0", ECNConfig(kmin_bytes=111, kmax_bytes=222,
                                           pmax=0.5))
        qs = net.switch_queue_indices("pod1.agg0")
        assert (net.kmin[qs] == 111).all()
        others = np.setdiff1d(np.arange(net.n_queues), qs)
        assert not (net.kmin[others] == 111).any()

    def test_control_loop_runs_on_sharded_substrate(self):
        from repro.baselines.static_ecn import secn1
        from repro.core.training import run_control_loop
        net = ShardedFluidNetwork(_small(), shards=2, seed=0)
        _load(net, _small(), n_flows=10)
        res = run_control_loop(net, secn1(), intervals=5, delta_t=1e-3)
        assert len(res.reward_trace) == 5

    def test_run_scenario_on_fluid_shard_substrate(self):
        from repro.analysis.experiments import ScenarioConfig, run_scenario
        cfg = ScenarioConfig(simulator="fluid_shard", fattree=_small(),
                             shards=2, duration=0.01, pretrain_intervals=0,
                             incast=False, load=0.3)
        res = run_scenario("secn1", cfg)
        assert res.flows_total > 0
        assert res.fct["overall"].count == res.flows_finished > 0


# ------------------------------------------------------------- properties
@settings(max_examples=12, deadline=None)
@given(shards=st.integers(1, 3),
       n_flows=st.integers(1, 30),
       seed=st.integers(0, 2**16))
def test_boundary_exchange_conserves_bytes_in_flight(shards, n_flows, seed):
    """Stepping through subdomain boundaries never creates or destroys
    buffered bytes: at every step the sharded run's total bytes-in-flight
    equals the monolithic run's, and what sits buffered can never exceed
    what the sources actually injected (offered minus still-unsent)."""
    cfg = _small()
    mono = ShardedFluidNetwork(cfg, shards=1, seed=0)
    shard = ShardedFluidNetwork(cfg, shards=shards, seed=0)
    for net in (mono, shard):
        _load(net, cfg, n_flows=n_flows, seed=seed, spread=1e-3)
    injected_cap = sum(f.size_bytes for f in mono.flow_objs.values())
    for _ in range(60):
        mono._step(cfg.step_dt)
        shard._step(cfg.step_dt)
        assert shard.bytes_in_flight() == mono.bytes_in_flight()
        assert 0.0 <= shard.bytes_in_flight() <= injected_cap


@settings(max_examples=10, deadline=None)
@given(fraction=st.floats(0.1, 0.9),
       fail_seed=st.integers(0, 2**16),
       shards=st.integers(2, 3))
def test_failure_reroute_agrees_sharded_vs_monolithic(fraction, fail_seed,
                                                      shards):
    """``fail_uplinks`` + the mid-run ``_route`` recompute must pick the
    same links and the same replacement paths whether the fabric is
    stepped monolithically or sharded."""
    cfg = _small()
    nets = [ShardedFluidNetwork(cfg, shards=s, seed=0) for s in (1, shards)]
    for net in nets:
        _load(net, cfg, n_flows=25, seed=7, spread=5e-4)
        for _ in range(20):
            net._step(cfg.step_dt)
        killed = net.fail_uplinks(fraction,
                                  rng=np.random.default_rng(fail_seed))
        assert killed >= 1
        for _ in range(20):
            net._step(cfg.step_dt)
    mono, shard = nets
    assert (mono.uplink_up == shard.uplink_up).all()
    mf, sf = mono.flow_table_state(), shard.flow_table_state()
    assert len(mf["f_src"]) == len(sf["f_src"])
    assert (mf["f_path"] == sf["f_path"]).all()
    assert (mf["f_core"] == sf["f_core"]).all()
    # no active flow may still traverse a dead uplink — unless its pod
    # pair has no commonly-live core at all (partitioned; old path kept)
    for i in np.flatnonzero(mf["f_active"]):
        c = int(mf["f_core"][i])
        if c < 0:
            continue
        ps = cfg.pod_of_host(int(mf["f_src"][i]))
        pd = cfg.pod_of_host(int(mf["f_dst"][i]))
        if not (mono.uplink_up[ps] & mono.uplink_up[pd]).any():
            continue
        assert mono.uplink_up[ps, c] and mono.uplink_up[pd, c]


@settings(max_examples=8, deadline=None)
@given(shards=st.sampled_from([1, 2, 4]),
       n_flows=st.integers(4, 30),
       seed=st.integers(0, 2**16),
       fail_fraction=st.floats(0.1, 0.6))
def test_sharded_flow_tables_survive_divergence_and_reroutes(
        shards, n_flows, seed, fail_fraction):
    """The ISSUE-10 acceptance property: with the flow table itself
    sharded per pod, every shard count conserves bytes-in-flight against
    the monolithic run step for step, stays fingerprint-bit-identical
    through mid-run ``set_ecn`` divergence *and* ``fail_uplinks``
    reroutes, and a reroute may migrate a flow's core but never its
    owner pod."""
    cfg = FatTreeConfig(n_pods=4, edge_per_pod=1, agg_per_pod=2,
                        core_per_agg=1, hosts_per_edge=2,
                        host_rate_bps=10e9, agg_rate_bps=40e9,
                        core_rate_bps=40e9)   # 5 subdomains: shards<=5
    mono = ShardedFluidNetwork(cfg, shards=1, seed=0)
    shard = ShardedFluidNetwork(cfg, shards=shards, seed=0)
    for net in (mono, shard):
        _load(net, cfg, n_flows=n_flows, seed=seed, spread=1e-3)
    owner_before = {fid: cfg.owner_pod_of_flow(int(f.src[1:]))
                    for fid, f in shard.flow_objs.items()}
    for k in range(60):
        if k == 20:   # mid-run per-switch divergence
            for net in (mono, shard):
                net.set_ecn("pod1.agg0", ECNConfig(kmin_bytes=5_000,
                                                   kmax_bytes=30_000,
                                                   pmax=0.9))
        if k == 30:   # mid-run failure + reroute
            for net in (mono, shard):
                killed = net.fail_uplinks(
                    fail_fraction, rng=np.random.default_rng(seed + 1))
                assert killed >= 1
        mono._step(cfg.step_dt)
        shard._step(cfg.step_dt)
        assert shard.bytes_in_flight() == mono.bytes_in_flight()
    mf, sf = mono.flow_table_state(), shard.flow_table_state()
    assert _fingerprint({"q": shard.q_len.copy(), **sf}) == \
        _fingerprint({"q": mono.q_len.copy(), **mf})
    # ownership is immutable: every flow is still in its source pod's
    # table (the reroute may have changed f_core, never the shard)
    for p, sh in enumerate(shard.flow_shards):
        for idx, fid in sh._idx_to_fid.items():
            assert owner_before[fid] == p
            assert cfg.owner_pod_of_flow(int(sh.f_src[idx])) == p
