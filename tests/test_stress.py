"""Stress tests: long runs, slot reuse, stats interplay."""

import numpy as np
import pytest

from repro.netsim.flow import Flow
from repro.netsim.fluid import FluidConfig, FluidNetwork
from repro.netsim.network import PacketNetwork
from repro.netsim.topology import TopologyConfig


class TestFluidSlotReuse:
    def test_many_sequential_waves_reuse_slots(self):
        """Thousands of short flows over time must not grow the arrays
        unboundedly — finished slots are recycled."""
        net = FluidNetwork(FluidConfig(n_spine=1, n_leaf=2, hosts_per_leaf=2,
                                       host_rate_bps=10e9,
                                       spine_rate_bps=40e9), seed=0)
        rng = np.random.default_rng(0)
        fid = 0
        for wave in range(20):
            for _ in range(50):
                s, d = rng.choice(4, 2, replace=False)
                net.start_flow(Flow(fid, f"h{s}", f"h{d}", 50_000,
                                    start_time=net.now))
                fid += 1
            net.advance(5e-3)   # each wave finishes before the next
        assert len(net.finished_flows) == 1000
        # the live array never needed anywhere near 1000 slots
        assert net._n_flows < 400

    def test_interleaved_long_and_short_flows(self):
        net = FluidNetwork(FluidConfig(n_spine=1, n_leaf=2, hosts_per_leaf=2,
                                       host_rate_bps=10e9,
                                       spine_rate_bps=40e9), seed=1)
        net.start_flow(Flow(0, "h0", "h2", 500_000_000))   # long-running
        for i in range(1, 100):
            net.start_flow(Flow(i, "h1", "h3", 20_000,
                                start_time=i * 1e-3))
        net.advance(0.15)
        shorts = [f for f in net.flow_objs.values() if f.flow_id > 0]
        assert all(f.done for f in shorts)
        assert not net.flow_objs[0].done     # elephant still going
        # short flows reused slots around the pinned long flow
        assert net._n_flows < 60


class TestStatsInterplay:
    def test_port_stats_then_queue_stats_consistent(self):
        """port_stats (no reset) before queue_stats (reset): the summed
        per-port tx must equal the per-switch tx of the same interval."""
        net = PacketNetwork(TopologyConfig(n_spine=1, n_leaf=2,
                                           hosts_per_leaf=2,
                                           host_rate_bps=1e8,
                                           spine_rate_bps=4e8), seed=0)
        net.start_flow(Flow(1, "h0", "h2", 100_000))
        net.advance(0.01)
        per_port = net.port_stats()
        per_switch = net.queue_stats()
        for name, st in per_switch.items():
            port_sum = sum(p.tx_bytes for (sw, _), p in per_port.items()
                           if sw == name)
            assert port_sum == st.tx_bytes

    def test_repeated_intervals_accumulate_total_volume(self):
        net = PacketNetwork(TopologyConfig(n_spine=1, n_leaf=2,
                                           hosts_per_leaf=2,
                                           host_rate_bps=1e8,
                                           spine_rate_bps=4e8), seed=0)
        f = Flow(1, "h0", "h2", 200_000)
        net.start_flow(f)
        total = 0
        for _ in range(40):
            net.advance(2e-3)
            total += net.queue_stats()["leaf0"].tx_bytes
        assert f.done
        # leaf0 forwarded at least the flow volume (plus control)
        assert total >= f.size_bytes

    def test_fluid_long_run_accumulators_stay_finite(self):
        net = FluidNetwork(FluidConfig(n_spine=1, n_leaf=2, hosts_per_leaf=2,
                                       host_rate_bps=10e9,
                                       spine_rate_bps=40e9), seed=2)
        rng = np.random.default_rng(2)
        for i in range(300):
            s, d = rng.choice(4, 2, replace=False)
            net.start_flow(Flow(i, f"h{s}", f"h{d}",
                                int(rng.integers(10_000, 2_000_000)),
                                start_time=float(rng.uniform(0, 0.3))))
        for _ in range(80):
            net.advance(5e-3)
            stats = net.queue_stats()
            for st in stats.values():
                assert np.isfinite(st.avg_qlen_bytes)
                assert st.tx_bytes >= 0
                assert 0.0 <= st.utilization <= 1.0
        assert all(f.done for f in net.flow_objs.values())
