"""Tests for the sweep utility (serial and process-parallel)."""

import math

import pytest

from repro.analysis.experiments import ScenarioConfig
from repro.analysis.report import format_table
from repro.analysis.sweep import (SweepCell, SweepSpec, run_sweep,
                                  sweep_table_rows)
from repro.netsim.fluid import FluidConfig


def tiny_base():
    return ScenarioConfig(duration=0.02, pretrain_intervals=0, seed=1,
                          load=0.4, incast=False,
                          fluid=FluidConfig(n_spine=1, n_leaf=2,
                                            hosts_per_leaf=2,
                                            host_rate_bps=10e9,
                                            spine_rate_bps=40e9))


class TestSweepSpec:
    def test_cells_cartesian(self):
        spec = SweepSpec(schemes=("secn1", "secn2"), loads=(0.3, 0.6),
                         workloads=("websearch",))
        assert len(spec) == 4
        assert ("secn2", 0.6, "websearch") in spec.cells()


class TestRunSweep:
    def test_serial_sweep(self):
        spec = SweepSpec(schemes=("secn1", "secn2"), loads=(0.4,))
        cells = run_sweep(spec, tiny_base(), workers=1)
        assert len(cells) == 2
        for c in cells:
            assert math.isfinite(c.metrics["overall_avg_fct"])
            assert c.workload == "websearch"

    def test_parallel_sweep_matches_serial(self):
        spec = SweepSpec(schemes=("secn1",), loads=(0.4,))
        serial = run_sweep(spec, tiny_base(), workers=1)
        parallel = run_sweep(spec, tiny_base(), workers=2)
        assert serial[0].metrics["overall_avg_fct"] == pytest.approx(
            parallel[0].metrics["overall_avg_fct"])

    def test_base_substitution(self):
        spec = SweepSpec(schemes=("secn1",), loads=(0.3, 0.5))
        cells = run_sweep(spec, tiny_base())
        assert {c.load for c in cells} == {0.3, 0.5}


class TestTableRows:
    def test_pivot_shape(self):
        cells = [
            SweepCell("secn1", 0.3, "websearch", {"overall_avg_fct": 1.0}),
            SweepCell("secn1", 0.6, "websearch", {"overall_avg_fct": 2.0}),
            SweepCell("pet", 0.3, "websearch", {"overall_avg_fct": 0.5}),
        ]
        headers, rows = sweep_table_rows(cells)
        assert headers == ["scheme", "websearch@30%", "websearch@60%"]
        by_scheme = {r[0]: r[1:] for r in rows}
        assert by_scheme["secn1"] == [1.0, 2.0]
        assert math.isnan(by_scheme["pet"][1])     # missing cell -> NaN
        # renders without error
        assert "scheme" in format_table(headers, rows)


class TestSimBatchSweep:
    """run_sweep(sim_batch=True) — one tensor program per grid, cell
    values bit-identical to the serial per-process path."""

    @staticmethod
    def _canon(cells):
        from repro.parallel.perfbench import _fingerprint
        return _fingerprint([(c.scheme, c.load, c.workload, c.metrics)
                             for c in cells])

    def test_matches_serial_bitwise(self):
        from repro.analysis.experiments import clear_pretrain_cache
        spec = SweepSpec(schemes=("pet", "secn1"), loads=(0.4, 0.7),
                         workloads=("websearch",))
        base = ScenarioConfig(duration=0.02, pretrain_intervals=20, seed=5,
                              fluid=tiny_base().fluid, incast=False)
        clear_pretrain_cache()
        ref = run_sweep(spec, base, workers=1)
        clear_pretrain_cache()
        bat = run_sweep(spec, base, sim_batch=True)
        assert self._canon(ref) == self._canon(bat)

    def test_rejects_packet_substrate(self):
        from repro.netsim.batchfluid import BatchCompatError
        spec = SweepSpec(schemes=("secn1",), loads=(0.4,))
        base = ScenarioConfig(duration=0.005, pretrain_intervals=0,
                              simulator="packet", incast=False)
        with pytest.raises(BatchCompatError, match="fluid"):
            run_sweep(spec, base, sim_batch=True)

    def test_rejects_engine_combination(self):
        from repro.parallel.engine import Engine
        spec = SweepSpec(schemes=("secn1",), loads=(0.4,))
        with pytest.raises(ValueError, match="sim_batch"):
            run_sweep(spec, tiny_base(), sim_batch=True,
                      engine=Engine(workers=1))

    def test_grid_helper_sim_batch(self):
        from repro.analysis.experiments import (clear_pretrain_cache,
                                                run_scenario,
                                                run_scenario_grid)
        from repro.parallel.perfbench import _fingerprint
        base = tiny_base()
        jobs = [("secn1", base), ("secn2", base)]
        clear_pretrain_cache()
        ref = [run_scenario(s, c) for s, c in jobs]
        clear_pretrain_cache()
        bat = run_scenario_grid(jobs, sim_batch=True)
        assert [_fingerprint(r.summary_row()) for r in ref] == \
            [_fingerprint(r.summary_row()) for r in bat]
