"""Tests for the sweep utility (serial and process-parallel)."""

import math

import pytest

from repro.analysis.experiments import ScenarioConfig
from repro.analysis.report import format_table
from repro.analysis.sweep import (SweepCell, SweepSpec, run_sweep,
                                  sweep_table_rows)
from repro.netsim.fluid import FluidConfig


def tiny_base():
    return ScenarioConfig(duration=0.02, pretrain_intervals=0, seed=1,
                          load=0.4, incast=False,
                          fluid=FluidConfig(n_spine=1, n_leaf=2,
                                            hosts_per_leaf=2,
                                            host_rate_bps=10e9,
                                            spine_rate_bps=40e9))


class TestSweepSpec:
    def test_cells_cartesian(self):
        spec = SweepSpec(schemes=("secn1", "secn2"), loads=(0.3, 0.6),
                         workloads=("websearch",))
        assert len(spec) == 4
        assert ("secn2", 0.6, "websearch") in spec.cells()


class TestRunSweep:
    def test_serial_sweep(self):
        spec = SweepSpec(schemes=("secn1", "secn2"), loads=(0.4,))
        cells = run_sweep(spec, tiny_base(), workers=1)
        assert len(cells) == 2
        for c in cells:
            assert math.isfinite(c.metrics["overall_avg_fct"])
            assert c.workload == "websearch"

    def test_parallel_sweep_matches_serial(self):
        spec = SweepSpec(schemes=("secn1",), loads=(0.4,))
        serial = run_sweep(spec, tiny_base(), workers=1)
        parallel = run_sweep(spec, tiny_base(), workers=2)
        assert serial[0].metrics["overall_avg_fct"] == pytest.approx(
            parallel[0].metrics["overall_avg_fct"])

    def test_base_substitution(self):
        spec = SweepSpec(schemes=("secn1",), loads=(0.3, 0.5))
        cells = run_sweep(spec, tiny_base())
        assert {c.load for c in cells} == {0.3, 0.5}


class TestTableRows:
    def test_pivot_shape(self):
        cells = [
            SweepCell("secn1", 0.3, "websearch", {"overall_avg_fct": 1.0}),
            SweepCell("secn1", 0.6, "websearch", {"overall_avg_fct": 2.0}),
            SweepCell("pet", 0.3, "websearch", {"overall_avg_fct": 0.5}),
        ]
        headers, rows = sweep_table_rows(cells)
        assert headers == ["scheme", "websearch@30%", "websearch@60%"]
        by_scheme = {r[0]: r[1:] for r in rows}
        assert by_scheme["secn1"] == [1.0, 2.0]
        assert math.isnan(by_scheme["pet"][1])     # missing cell -> NaN
        # renders without error
        assert "scheme" in format_table(headers, rows)
