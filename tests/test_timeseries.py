"""Tests for the time-series recorder and delay-derived ECN settings."""

import numpy as np
import pytest

from repro.analysis.timeseries import TimeSeriesRecorder
from repro.netsim.ecn import ECNConfig


class TestRecorder:
    def test_record_and_columns(self):
        rec = TimeSeriesRecorder()
        rec.record(0.0, qlen=10.0, util=0.5)
        rec.record(1.0, qlen=20.0, util=0.6)
        assert len(rec) == 2
        np.testing.assert_allclose(rec.times(), [0.0, 1.0])
        np.testing.assert_allclose(rec.column("qlen"), [10.0, 20.0])

    def test_schema_extends_with_nan_backfill(self):
        rec = TimeSeriesRecorder()
        rec.record(0.0, a=1.0)
        rec.record(1.0, a=2.0, b=9.0)
        col = rec.column("b")
        assert np.isnan(col[0]) and col[1] == 9.0

    def test_time_monotonicity_enforced(self):
        rec = TimeSeriesRecorder()
        rec.record(1.0, x=0.0)
        with pytest.raises(ValueError):
            rec.record(0.5, x=0.0)

    def test_unknown_field_rejected(self):
        rec = TimeSeriesRecorder()
        rec.record(0.0, x=1.0)
        with pytest.raises(KeyError):
            rec.column("y")

    def test_window_slicing(self):
        rec = TimeSeriesRecorder()
        for t in range(10):
            rec.record(float(t), v=float(t))
        w = rec.window(3.0, 7.0)
        np.testing.assert_allclose(w.times(), [3, 4, 5, 6])

    def test_summary(self):
        rec = TimeSeriesRecorder()
        for t, v in enumerate([1.0, 3.0]):
            rec.record(float(t), v=v)
        s = rec.summary("v")
        assert s["count"] == 2
        assert s["mean"] == pytest.approx(2.0)
        assert s["min"] == 1.0 and s["max"] == 3.0

    def test_summary_empty_field(self):
        rec = TimeSeriesRecorder()
        rec.record(0.0, a=1.0)
        rec.record(1.0, a=2.0, b=1.0)
        s = rec.summary("b")
        assert s["count"] == 1

    def test_csv_roundtrip(self, tmp_path):
        rec = TimeSeriesRecorder()
        rec.record(0.0, qlen=5.0)
        rec.record(1e-3, qlen=7.5, util=0.4)
        path = str(tmp_path / "trace.csv")
        rec.to_csv(path)
        back = TimeSeriesRecorder.from_csv(path)
        assert len(back) == 2
        np.testing.assert_allclose(back.column("qlen"), [5.0, 7.5])
        assert np.isnan(back.column("util")[0])

    def test_with_control_loop(self):
        from repro.baselines.static_ecn import secn1
        from repro.core.training import run_control_loop
        from repro.netsim.flow import Flow
        from repro.netsim.fluid import FluidConfig, FluidNetwork

        net = FluidNetwork(FluidConfig(n_spine=1, n_leaf=2, hosts_per_leaf=2,
                                       host_rate_bps=10e9,
                                       spine_rate_bps=40e9), seed=0)
        net.start_flow(Flow(1, "h0", "h2", 5_000_000))
        rec = TimeSeriesRecorder()

        def probe(i, now, stats):
            rec.record(now, qlen=sum(s.qlen_bytes for s in stats.values()))

        run_control_loop(net, secn1(), intervals=10, delta_t=1e-3,
                         on_interval=probe)
        assert len(rec) == 10
        assert rec.times()[-1] == pytest.approx(10e-3, rel=0.01)


class TestDelayDerivedECN:
    def test_delay_to_bytes_conversion(self):
        cfg = ECNConfig.from_delay(100e-6, 10e9)   # 100us at 10 Gbps
        assert cfg.kmax_bytes == 125_000
        assert cfg.kmin_bytes == 31_250

    def test_scales_with_port_speed(self):
        slow = ECNConfig.from_delay(50e-6, 25e9)
        fast = ECNConfig.from_delay(50e-6, 100e9)
        assert fast.kmax_bytes == 4 * slow.kmax_bytes

    def test_validation(self):
        with pytest.raises(ValueError):
            ECNConfig.from_delay(0.0, 1e9)
        with pytest.raises(ValueError):
            ECNConfig.from_delay(1e-3, 0.0)

    def test_marks_at_equivalent_delay(self):
        cfg = ECNConfig.from_delay(10e-6, 8e9, pmax=1.0)  # 10us at 8 Gbps
        # queue of exactly the delay budget: at Kmax -> always mark
        assert cfg.marking_probability(10_000) == 1.0
        assert cfg.marking_probability(1_000) == 0.0
