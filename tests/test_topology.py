"""Tests for leaf-spine topology construction and routing."""

import networkx as nx
import numpy as np
import pytest

from repro.netsim.engine import Simulator
from repro.netsim.topology import LeafSpineTopology, TopologyConfig


@pytest.fixture
def topo():
    cfg = TopologyConfig(n_spine=2, n_leaf=3, hosts_per_leaf=4)
    return LeafSpineTopology(cfg, Simulator(), rng=np.random.default_rng(0))


class TestConstruction:
    def test_counts(self, topo):
        assert len(topo.hosts) == 12
        assert len(topo.leaves) == 3
        assert len(topo.spines) == 2
        assert len(topo.switches()) == 5

    def test_leaf_ports(self, topo):
        # each leaf: hosts_per_leaf down-ports + n_spine up-ports
        for leaf in topo.leaves:
            assert len(leaf.ports) == 4 + 2

    def test_spine_ports(self, topo):
        for spine in topo.spines:
            assert len(spine.ports) == 3   # one per leaf

    def test_host_nics_attached(self, topo):
        for h in topo.hosts:
            assert h.nic is not None
            assert h.nic.rate_bps == topo.config.host_rate_bps

    def test_switch_ports_have_markers_hosts_dont(self, topo):
        for sw in topo.switches():
            assert all(p.marker is not None for p in sw.ports)
        for h in topo.hosts:
            assert h.nic.marker is None

    def test_fabric_ports_enumerated(self, topo):
        # leaf->spine and spine->leaf, both directions
        assert len(topo.fabric_ports) == 2 * 3 * 2

    def test_leaf_of(self, topo):
        assert topo.leaf_of("h0") is topo.leaves[0]
        assert topo.leaf_of("h4") is topo.leaves[1]
        assert topo.leaf_of("h11") is topo.leaves[2]


class TestRouting:
    def test_leaf_routes_local_host_directly(self, topo):
        leaf0 = topo.leaves[0]
        for i in range(4):
            route = leaf0.routes[f"h{i}"]
            assert len(route) == 1
            assert leaf0.ports[route[0]].peer is topo.hosts[i]

    def test_leaf_ecmps_remote_hosts_over_all_spines(self, topo):
        leaf0 = topo.leaves[0]
        route = leaf0.routes["h5"]
        assert len(route) == topo.config.n_spine
        peers = {leaf0.ports[i].peer.name for i in route}
        assert peers == {"spine0", "spine1"}

    def test_spine_routes_every_host(self, topo):
        for spine in topo.spines:
            for i in range(12):
                route = spine.routes[f"h{i}"]
                assert len(route) == 1
                leaf = spine.ports[route[0]].peer
                assert leaf is topo.leaf_of(f"h{i}")

    def test_no_route_to_unknown(self, topo):
        assert "h99" not in topo.leaves[0].routes


class TestGraphView:
    def test_connected(self, topo):
        g = topo.graph()
        assert nx.is_connected(g)
        assert g.number_of_nodes() == 12 + 3 + 2

    def test_host_degree_one(self, topo):
        g = topo.graph()
        for i in range(12):
            assert g.degree[f"h{i}"] == 1

    def test_path_length_cross_leaf(self, topo):
        g = topo.graph()
        # host -> leaf -> spine -> leaf -> host = 4 hops
        assert nx.shortest_path_length(g, "h0", "h5") == 4
        assert nx.shortest_path_length(g, "h0", "h1") == 2


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            TopologyConfig(n_spine=0)

    def test_paper_scale(self):
        cfg = TopologyConfig.paper_scale()
        assert cfg.n_hosts == 288
        assert cfg.n_spine == 6 and cfg.n_leaf == 12
        assert cfg.host_rate_bps == 25e9
        assert cfg.spine_rate_bps == 100e9

    def test_base_rtt_positive(self):
        assert TopologyConfig().base_rtt() > 0
