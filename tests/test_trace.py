"""Tests for flow-trace persistence."""

import numpy as np
import pytest

from repro.netsim.flow import Flow
from repro.traffic.generator import PoissonTrafficGenerator, TrafficConfig
from repro.traffic.trace import load_trace, save_trace, trace_summary
from repro.traffic.workloads import WEB_SEARCH


def sample_flows():
    return [
        Flow(2, "h1", "h0", 2_000_000, start_time=0.5, tag="bg"),
        Flow(1, "h0", "h3", 10_000, start_time=0.1, tag="incast"),
    ]


class TestRoundtrip:
    def test_save_load(self, tmp_path):
        path = str(tmp_path / "trace.csv")
        n = save_trace(path, sample_flows())
        assert n == 2
        back = load_trace(path)
        assert [f.flow_id for f in back] == [1, 2]   # sorted by start
        f = back[1]
        assert (f.src, f.dst, f.size_bytes) == ("h1", "h0", 2_000_000)
        assert f.start_time == pytest.approx(0.5)
        assert f.tag == "bg"

    def test_float_precision_preserved(self, tmp_path):
        path = str(tmp_path / "t.csv")
        t = 0.123456789012345
        save_trace(path, [Flow(1, "a", "b", 100, start_time=t)])
        assert load_trace(path)[0].start_time == t

    def test_generated_trace_roundtrip(self, tmp_path):
        gen = PoissonTrafficGenerator([f"h{i}" for i in range(8)],
                                      WEB_SEARCH,
                                      rng=np.random.default_rng(0))
        flows = gen.generate(TrafficConfig(load=0.3, duration=0.05,
                                           host_rate_bps=1e9))
        path = str(tmp_path / "gen.csv")
        save_trace(path, flows)
        back = load_trace(path)
        assert len(back) == len(flows)
        assert sum(f.size_bytes for f in back) == \
            sum(f.size_bytes for f in flows)

    def test_missing_column_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("flow_id,src,dst\n1,a,b\n")
        with pytest.raises(ValueError):
            load_trace(str(path))

    def test_replay_into_simulator(self, tmp_path):
        from repro.netsim.fluid import FluidConfig, FluidNetwork
        path = str(tmp_path / "replay.csv")
        save_trace(path, [Flow(1, "h0", "h2", 500_000, start_time=0.0)])
        net = FluidNetwork(FluidConfig(n_spine=1, n_leaf=2, hosts_per_leaf=2,
                                       host_rate_bps=10e9,
                                       spine_rate_bps=40e9), seed=0)
        net.start_flows(load_trace(path))
        net.advance(0.05)
        assert len(net.finished_flows) == 1


class TestSummary:
    def test_empty(self):
        s = trace_summary([])
        assert s["flows"] == 0 and s["bytes"] == 0

    def test_counts(self):
        s = trace_summary(sample_flows())
        assert s["flows"] == 2
        assert s["bytes"] == 2_010_000
        assert s["duration"] == pytest.approx(0.4)
        assert s["mice"] == 1 and s["elephants"] == 1
