"""Tests for CDFs, workloads, generators, incast, patterns, classification."""

import numpy as np
import pytest

from repro.netsim.flow import Flow
from repro.traffic import (DATA_MINING, WEB_SEARCH, IncastConfig,
                           IncastGenerator, PatternSchedule, PatternSegment,
                           PiecewiseCDF, PoissonTrafficGenerator,
                           TrafficConfig, mice_elephant_ratio, split_by_class,
                           workload_by_name)
from repro.traffic.classify import count_classes


class TestPiecewiseCDF:
    def test_validation(self):
        with pytest.raises(ValueError):
            PiecewiseCDF([(0, 0.0)])
        with pytest.raises(ValueError):
            PiecewiseCDF([(0, 0.0), (10, 0.5)])          # doesn't reach 1
        with pytest.raises(ValueError):
            PiecewiseCDF([(10, 0.0), (5, 1.0)])          # decreasing values
        with pytest.raises(ValueError):
            PiecewiseCDF([(0, 0.5), (10, 0.2), (20, 1.0)])  # decreasing probs

    def test_quantiles(self):
        cdf = PiecewiseCDF([(0, 0.0), (100, 1.0)])
        assert cdf.quantile(0.5) == pytest.approx(50)
        assert cdf.quantile(0.0) == pytest.approx(0)
        assert cdf.quantile(1.0) == pytest.approx(100)
        with pytest.raises(ValueError):
            cdf.quantile(1.5)

    def test_quantile_subnormal_prob_interval_stays_finite(self):
        # np.interp's slope (dv/dp) overflows to inf when a knot
        # interval's probability width is subnormal; quantile() must not.
        cdf = PiecewiseCDF([(1, 0.0), (5, 2.2250738585072014e-308),
                            (6, 1.0)])
        q = cdf.quantile(2.225073858507203e-309)
        assert np.isfinite(q)
        assert 1.0 <= q <= cdf.quantile(1.0)

    def test_cdf_inverse_consistency(self):
        cdf = WEB_SEARCH
        for q in (0.1, 0.4, 0.75, 0.95):
            assert cdf.cdf(cdf.quantile(q)) == pytest.approx(q, abs=1e-9)

    def test_uniform_mean(self):
        cdf = PiecewiseCDF([(0, 0.0), (100, 1.0)])
        assert cdf.mean() == pytest.approx(50)

    def test_sample_mean_matches_analytic(self):
        rng = np.random.default_rng(0)
        samples = WEB_SEARCH.sample(rng, 200_000)
        assert np.mean(samples) == pytest.approx(WEB_SEARCH.mean(), rel=0.05)

    def test_sample_range(self):
        rng = np.random.default_rng(1)
        s = DATA_MINING.sample(rng, 10_000)
        assert s.min() >= DATA_MINING.values[0]
        assert s.max() <= DATA_MINING.values[-1]

    def test_scalar_sample(self):
        v = WEB_SEARCH.sample(np.random.default_rng(2))
        assert isinstance(v, float)


class TestWorkloads:
    def test_lookup_normalizes_names(self):
        assert workload_by_name("Web Search") is WEB_SEARCH
        assert workload_by_name("data_mining") is DATA_MINING
        with pytest.raises(KeyError):
            workload_by_name("hadoop")

    def test_datamining_heavier_tailed_than_websearch(self):
        """DM: most flows tiny, huge max; WS: mid-sized body (Fig. 3)."""
        assert DATA_MINING.quantile(0.5) < WEB_SEARCH.quantile(0.5)
        assert DATA_MINING.values[-1] > WEB_SEARCH.values[-1]

    def test_websearch_medians(self):
        # ~60% of Web Search flows are under 200 KB
        assert WEB_SEARCH.cdf(200_000) == pytest.approx(0.60, abs=0.01)

    def test_datamining_mostly_mice(self):
        # ~80% of Data Mining flows are under 10 KB
        assert DATA_MINING.cdf(10_000) == pytest.approx(0.80, abs=0.01)


class TestPoissonGenerator:
    def _gen(self, seed=0):
        hosts = [f"h{i}" for i in range(16)]
        return PoissonTrafficGenerator(hosts, WEB_SEARCH,
                                       rng=np.random.default_rng(seed))

    def test_offered_load_close_to_target(self):
        gen = self._gen()
        cfg = TrafficConfig(load=0.5, duration=2.0, host_rate_bps=1e9)
        flows = gen.generate(cfg)
        offered = sum(f.size_bytes for f in flows) / cfg.duration
        capacity = 16 * 1e9 / 8
        assert offered / capacity == pytest.approx(0.5, rel=0.15)

    def test_poisson_arrival_count(self):
        gen = self._gen(seed=1)
        cfg = TrafficConfig(load=0.4, duration=1.0, host_rate_bps=1e9)
        flows = gen.generate(cfg)
        lam = gen.arrival_rate(cfg)
        assert len(flows) == pytest.approx(lam, rel=0.2)

    def test_arrivals_within_window_and_sorted(self):
        gen = self._gen(seed=2)
        cfg = TrafficConfig(load=0.3, duration=0.5, host_rate_bps=1e9,
                            start_time=10.0)
        flows = gen.generate(cfg)
        times = [f.start_time for f in flows]
        assert all(10.0 <= t < 10.5 for t in times)
        assert times == sorted(times)

    def test_src_dst_distinct(self):
        flows = self._gen(seed=3).generate(
            TrafficConfig(load=0.3, duration=0.2, host_rate_bps=1e9))
        assert all(f.src != f.dst for f in flows)

    def test_flow_ids_unique_across_calls(self):
        gen = self._gen(seed=4)
        cfg = TrafficConfig(load=0.2, duration=0.1, host_rate_bps=1e9)
        a = gen.generate(cfg)
        b = gen.generate(cfg)
        ids = [f.flow_id for f in a + b]
        assert len(ids) == len(set(ids))

    def test_min_size_floor(self):
        flows = self._gen(seed=5).generate(TrafficConfig(
            load=0.3, duration=0.2, host_rate_bps=1e9, min_size=5_000))
        assert all(f.size_bytes >= 5_000 for f in flows)

    def test_validation(self):
        with pytest.raises(ValueError):
            TrafficConfig(load=0.0, duration=1.0, host_rate_bps=1e9)
        with pytest.raises(ValueError):
            TrafficConfig(load=0.5, duration=-1.0, host_rate_bps=1e9)
        with pytest.raises(ValueError):
            PoissonTrafficGenerator(["h0"], WEB_SEARCH)


class TestIncastGenerator:
    def test_round_structure(self):
        hosts = [f"h{i}" for i in range(10)]
        gen = IncastGenerator(hosts, rng=np.random.default_rng(0))
        cfg = IncastConfig(fan_in=4, response_bytes=1000, period=1e-3,
                           duration=5e-3)
        flows = gen.generate(cfg, aggregator="h0")
        assert len(flows) == 5 * 4
        assert all(f.dst == "h0" for f in flows)
        assert all(f.src != "h0" for f in flows)

    def test_senders_distinct_within_round(self):
        hosts = [f"h{i}" for i in range(10)]
        gen = IncastGenerator(hosts, rng=np.random.default_rng(1))
        flows = gen.generate(IncastConfig(fan_in=6, response_bytes=100,
                                          period=1e-3, duration=1e-3),
                             aggregator="h3")
        srcs = [f.src for f in flows]
        assert len(srcs) == len(set(srcs))

    def test_fan_in_capped_by_host_count(self):
        hosts = [f"h{i}" for i in range(4)]
        gen = IncastGenerator(hosts, rng=np.random.default_rng(2))
        flows = gen.generate(IncastConfig(fan_in=100, response_bytes=100,
                                          period=1e-3, duration=1e-3))
        assert len(flows) == 3

    def test_rotating_aggregators(self):
        hosts = [f"h{i}" for i in range(16)]
        gen = IncastGenerator(hosts, rng=np.random.default_rng(3))
        flows = gen.generate(IncastConfig(fan_in=3, response_bytes=100,
                                          period=1e-3, duration=20e-3))
        assert len({f.dst for f in flows}) > 1

    def test_validation(self):
        with pytest.raises(ValueError):
            IncastConfig(fan_in=1)
        with pytest.raises(ValueError):
            IncastGenerator(["h0", "h1"])


class TestPatternSchedule:
    def test_fig6_schedule(self):
        sched = PatternSchedule.paper_fig6(load=0.5, scale=0.1)
        assert sched.workload_at(0.0) == "websearch"
        assert sched.workload_at(0.42) == "datamining"
        assert sched.workload_at(0.85) == "websearch"
        assert sched.workload_at(0.95) == "datamining"
        assert len(sched.switch_times()) == 3

    def test_overlap_rejected(self):
        with pytest.raises(ValueError):
            PatternSchedule([
                PatternSegment("websearch", 0.0, 2.0, 0.5),
                PatternSegment("datamining", 1.0, 2.0, 0.5),
            ])

    def test_generate_flows_tags_by_segment(self):
        sched = PatternSchedule([
            PatternSegment("websearch", 0.0, 0.05, 0.5),
            PatternSegment("datamining", 0.05, 0.05, 0.5),
        ])
        hosts = [f"h{i}" for i in range(8)]
        flows = sched.generate_flows(hosts, 1e9,
                                     rng=np.random.default_rng(0))
        for f in flows:
            expected = "websearch" if f.start_time < 0.05 else "datamining"
            assert f.tag == expected

    def test_unknown_workload_rejected_eagerly(self):
        with pytest.raises(KeyError):
            PatternSegment("bogus", 0.0, 1.0, 0.5)


class TestClassification:
    def test_count_classes(self):
        assert count_classes([100, 2_000_000, 500]) == (2, 1)

    def test_ratio_bounds_and_empty(self):
        assert mice_elephant_ratio([]) == 0.5
        assert mice_elephant_ratio([1, 2, 3]) == 1.0
        assert mice_elephant_ratio([9_999_999]) == 0.0

    def test_split_by_class(self):
        flows = [Flow(1, "a", "b", 100), Flow(2, "a", "b", 5_000_000)]
        out = split_by_class(flows)
        assert [f.flow_id for f in out["mice"]] == [1]
        assert [f.flow_id for f in out["elephant"]] == [2]
