"""Tests for training helpers: multi export, exploration continuation."""

import numpy as np
import pytest

from repro.core.config import PETConfig
from repro.core.pet import PETController
from repro.core.training import pretrain_offline_multi
from repro.netsim.flow import Flow
from repro.netsim.fluid import FluidConfig, FluidNetwork


def make_net(seed=0):
    net = FluidNetwork(FluidConfig(n_spine=1, n_leaf=2, hosts_per_leaf=2,
                                   host_rate_bps=10e9, spine_rate_bps=40e9),
                       seed=seed)
    rng = np.random.default_rng(seed)
    for i in range(20):
        s, d = rng.choice(4, 2, replace=False)
        net.start_flow(Flow(i, f"h{s}", f"h{d}",
                            int(rng.integers(50_000, 3_000_000)),
                            start_time=float(rng.uniform(0, 0.02))))
    return net


def test_pretrain_offline_multi_exports_every_switch():
    cfg = PETConfig(seed=0, update_interval=5)
    state = pretrain_offline_multi(make_net, cfg, episodes=1,
                                   intervals_per_episode=10)
    net = make_net()
    assert set(state) == set(net.switch_names())
    ctrl = PETController(net.switch_names(), cfg)
    ctrl.load_state_dict(state)    # shape compatible per switch


def test_pretrain_offline_multi_multiple_episodes():
    cfg = PETConfig(seed=1, update_interval=5)
    state = pretrain_offline_multi(make_net, cfg, episodes=2,
                                   intervals_per_episode=6)
    assert state    # completed both episodes without error


def test_advance_exploration_moves_eq13_clock():
    ctrl = PETController(["leaf0"], PETConfig(seed=0, explore_eps0=0.2,
                                              decay_rate=0.9, decay_step=50))
    before = ctrl.exploration["leaf0"].value()
    ctrl.advance_exploration(500)
    after = ctrl.exploration["leaf0"].value()
    assert after < before
    assert after == pytest.approx(0.9 ** (500 / 50) * 0.2)


def test_advance_exploration_negative_is_noop():
    ctrl = PETController(["leaf0"], PETConfig(seed=0))
    t0 = ctrl.exploration["leaf0"].t
    ctrl.advance_exploration(-5)
    assert ctrl.exploration["leaf0"].t == t0


def test_fast_profile_overrides_and_defaults():
    cfg = PETConfig.fast()
    assert cfg.actor_lr == pytest.approx(3e-3)
    assert cfg.ppo_epochs == 10
    assert cfg.decay_rate == pytest.approx(0.90)
    # paper constants unrelated to optimization stay untouched
    assert cfg.alpha_kb == 20.0
    assert cfg.clip_eps == 0.2
    # explicit overrides win
    assert PETConfig.fast(actor_lr=1e-4).actor_lr == pytest.approx(1e-4)


# ----------------------------------------------------- sim-as-batch backend
class TestPretrainMultiSeedSimBatch:
    """pretrain_multi_seed(sim_batch=True) — the BatchFluidNetwork
    replica backend must be bit-identical to the per-process path."""

    @staticmethod
    def _canon(results):
        from repro.parallel.perfbench import _fingerprint
        return _fingerprint([
            (r.seed, r.state,
             [(ep.intervals, ep.mean_reward, ep.rewards_per_switch,
               ep.reward_trace) for ep in r.episodes])
            for r in results])

    def test_bit_identical_to_engine_path(self):
        from repro.core.training import pretrain_multi_seed
        cfg = PETConfig(seed=None, update_interval=5, delta_t=1e-3)
        kw = dict(seeds=[3, 14, 15], episodes=2, intervals_per_episode=6)
        ref = pretrain_multi_seed(make_net, cfg, **kw)
        bat = pretrain_multi_seed(make_net, cfg, **kw, sim_batch=True)
        assert self._canon(ref) == self._canon(bat)

    def test_checkpoints_written_per_seed(self, tmp_path):
        from repro.core.training import pretrain_multi_seed
        cfg = PETConfig(seed=None, update_interval=5, delta_t=1e-3)
        pretrain_multi_seed(make_net, cfg, seeds=[1, 2], episodes=1,
                            intervals_per_episode=4, sim_batch=True,
                            checkpoint_dir=str(tmp_path), checkpoint_every=2)
        dirs = sorted(p.name for p in tmp_path.iterdir())
        assert dirs == ["seed-00000001", "seed-00000002"]
        assert all(any(p.iterdir()) for p in tmp_path.iterdir())

    def test_rejects_engine_combination(self):
        from repro.core.training import pretrain_multi_seed
        from repro.parallel.engine import Engine
        with pytest.raises(ValueError, match="sim_batch"):
            pretrain_multi_seed(make_net, None, seeds=[1, 2],
                                sim_batch=True, engine=Engine(workers=1))

    def test_rejects_non_fluid_networks(self):
        from repro.core.training import pretrain_multi_seed
        from repro.netsim.batchfluid import BatchCompatError

        class NotFluid:
            def switch_names(self):
                return ["leaf0"]

        with pytest.raises(BatchCompatError, match="fluid"):
            pretrain_multi_seed(lambda s: NotFluid(), None, seeds=[1, 2],
                                intervals_per_episode=2, sim_batch=True)
