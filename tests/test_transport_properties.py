"""Property-based tests on transports and the fluid model's invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.netsim.ecn import ECNConfig
from repro.netsim.flow import Flow
from repro.netsim.fluid import FluidConfig, FluidNetwork
from repro.netsim.network import PacketNetwork
from repro.netsim.topology import TopologyConfig


# Keep the fabrics tiny: hypothesis runs many examples.
def packet_net(seed=0, buffer_bytes=2_000_000):
    return PacketNetwork(TopologyConfig(
        n_spine=1, n_leaf=2, hosts_per_leaf=2,
        host_rate_bps=2e8, spine_rate_bps=8e8,
        switch_buffer_bytes=buffer_bytes), seed=seed)


def fluid_net(seed=0):
    return FluidNetwork(FluidConfig(
        n_spine=1, n_leaf=2, hosts_per_leaf=2,
        host_rate_bps=10e9, spine_rate_bps=40e9), seed=seed)


class TestPacketTransportProperties:
    @given(sizes=st.lists(st.integers(1_000, 100_000), min_size=1,
                          max_size=4),
           kmax_kb=st.sampled_from([20, 100, 500]))
    @settings(max_examples=15, deadline=None)
    def test_all_flows_complete_and_fct_positive(self, sizes, kmax_kb):
        net = packet_net()
        net.set_ecn_all(ECNConfig(kmax_kb * 250, kmax_kb * 1000, 0.5))
        flows = [Flow(i, f"h{i % 2}", f"h{2 + i % 2}", s)
                 for i, s in enumerate(sizes)]
        net.start_flows(flows)
        net.advance(3.0)
        for f in flows:
            assert f.done
            assert f.fct > 0
            # FCT can never beat the line-rate serialization bound
            assert f.fct >= f.size_bytes * 8 / 2e8 * 0.99

    @given(size=st.integers(5_000, 200_000), seed=st.integers(0, 100))
    @settings(max_examples=15, deadline=None)
    def test_receiver_byte_count_matches_flow_size(self, size, seed):
        net = packet_net(seed=seed)
        f = Flow(1, "h0", "h2", size)
        net.start_flow(f)
        net.advance(3.0)
        assert f.done
        rx = net.topology.node("h2").transport.receivers[1]
        assert rx.expected >= size      # cumulative in-order bytes

    @given(n_flows=st.integers(1, 5))
    @settings(max_examples=10, deadline=None)
    def test_fifo_flow_ids_complete_exactly_once(self, n_flows):
        net = packet_net()
        flows = [Flow(i, "h0", "h3", 20_000, start_time=i * 1e-4)
                 for i in range(n_flows)]
        net.start_flows(flows)
        net.advance(3.0)
        done_ids = [f.flow_id for f in net.finished_flows]
        assert sorted(done_ids) == list(range(n_flows))
        assert len(set(done_ids)) == n_flows


class TestFluidProperties:
    @given(sizes=st.lists(st.integers(10_000, 5_000_000), min_size=1,
                          max_size=6),
           seed=st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_work_conservation(self, sizes, seed):
        """Total delivered bytes equal total offered bytes when all
        flows complete, and never exceed them."""
        net = fluid_net(seed=seed)
        rng = np.random.default_rng(seed)
        flows = []
        for i, s in enumerate(sizes):
            src, dst = rng.choice(4, 2, replace=False)
            flows.append(Flow(i, f"h{src}", f"h{dst}", s))
        net.start_flows(flows)
        net.advance(0.2)
        assert all(f.done for f in flows)
        # remaining work is non-negative and zero for finished flows
        n = net._n_flows
        assert np.all(net.f_remaining[:n] <= max(sizes))
        for i in range(n):
            assert net.f_remaining[i] <= 0 or not net.f_active[i]

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_queue_lengths_never_negative_or_above_buffer(self, seed):
        net = fluid_net(seed=seed)
        rng = np.random.default_rng(seed)
        for i in range(10):
            src, dst = rng.choice(4, 2, replace=False)
            net.start_flow(Flow(i, f"h{src}", f"h{dst}",
                                int(rng.integers(10_000, 50_000_000))))
        for _ in range(20):
            net.advance(5e-4)
            assert np.all(net.q_len >= 0.0)
            assert np.all(net.q_len <= net.config.switch_buffer_bytes + 1)

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_rates_within_line_rate(self, seed):
        net = fluid_net(seed=seed)
        rng = np.random.default_rng(seed)
        for i in range(8):
            src, dst = rng.choice(4, 2, replace=False)
            net.start_flow(Flow(i, f"h{src}", f"h{dst}", 10_000_000))
        net.advance(2e-3)
        line = net.config.host_rate_bps / 8.0
        n = net._n_flows
        active = net.f_active[:n]
        assert np.all(net.f_rate[:n][active] <= line * (1 + 1e-9))
        assert np.all(net.f_rate[:n][active] > 0)

    @given(fraction=st.floats(0.1, 0.9), seed=st.integers(0, 100))
    @settings(max_examples=15, deadline=None)
    def test_failure_restore_is_idempotent_on_capacity(self, fraction, seed):
        net = fluid_net(seed=seed)
        nominal = net.q_cap.copy()
        net.fail_uplinks(fraction, rng=np.random.default_rng(seed))
        net.restore_uplinks()
        np.testing.assert_allclose(net.q_cap, nominal)
