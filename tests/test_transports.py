"""Tests for the DCQCN / DCTCP / HPCC transports on the packet simulator."""

import numpy as np
import pytest

from repro.netsim.ecn import ECNConfig
from repro.netsim.flow import Flow
from repro.netsim.network import PacketNetwork
from repro.netsim.topology import TopologyConfig


def small_net(transport="dcqcn", **topo_kwargs):
    defaults = dict(n_spine=1, n_leaf=2, hosts_per_leaf=2,
                    host_rate_bps=1e8, spine_rate_bps=4e8,
                    host_link_delay=1e-6, fabric_link_delay=1e-6)
    defaults.update(topo_kwargs)
    return PacketNetwork(TopologyConfig(**defaults), transport=transport,
                         seed=0)


@pytest.mark.parametrize("transport", ["dcqcn", "dctcp", "hpcc"])
class TestFlowCompletion:
    def test_single_flow_completes(self, transport):
        net = small_net(transport)
        f = Flow(1, "h0", "h3", 50_000, start_time=0.0)
        net.start_flow(f)
        net.advance(0.5)
        assert f.done
        assert f.fct > 0
        # FCT must be at least the line-rate transfer time
        assert f.fct >= f.size_bytes * 8 / 1e8 * 0.99

    def test_intra_leaf_flow_completes(self, transport):
        net = small_net(transport)
        f = Flow(1, "h0", "h1", 20_000)
        net.start_flow(f)
        net.advance(0.5)
        assert f.done

    def test_two_competing_flows_complete(self, transport):
        net = small_net(transport)
        flows = [Flow(1, "h0", "h3", 100_000), Flow(2, "h1", "h3", 100_000)]
        net.start_flows(flows)
        net.advance(2.0)
        assert all(f.done for f in flows)

    def test_deferred_start_time(self, transport):
        net = small_net(transport)
        f = Flow(1, "h0", "h2", 10_000, start_time=0.01)
        net.start_flow(f)
        net.advance(0.5)
        assert f.done
        assert f.finish_time > 0.01


class TestDCQCN:
    def test_cnp_cuts_rate(self):
        net = small_net("dcqcn")
        # Aggressive marking + two senders converging on one host port
        # forces queue build-up, marking, CNPs, and rate cuts.
        net.set_ecn_all(ECNConfig(1, 2, 1.0))
        flows = [Flow(1, "h0", "h3", 500_000), Flow(2, "h1", "h3", 500_000)]
        net.start_flows(flows)
        net.advance(0.01)
        rates = [net.topology.host(i).transport.current_rate(i + 1)
                 for i in range(2)]
        assert all(r is not None for r in rates)
        assert min(rates) < 1e8 * 0.9

    def test_rate_recovers_without_marking(self):
        net = small_net("dcqcn")
        net.set_ecn_all(ECNConfig(10_000_000, 20_000_000, 0.01))  # never mark
        f = Flow(1, "h0", "h3", 2_000_000)
        net.start_flow(f)
        net.advance(0.05)
        transport = net.topology.host(0).transport
        if not f.done:
            assert transport.current_rate(1) == pytest.approx(1e8, rel=0.1)

    def test_alpha_rises_under_persistent_marking(self):
        net = small_net("dcqcn")
        net.set_ecn_all(ECNConfig(1, 2, 1.0))    # mark everything queued
        flows = [Flow(1, "h0", "h3", 300_000), Flow(2, "h1", "h3", 300_000)]
        net.start_flows(flows)
        net.advance(0.02)
        receiver = net.topology.node("h3").transport
        assert len(receiver._last_cnp_time) >= 1    # CNPs were generated
        transport = net.topology.host(0).transport
        if 1 in transport.senders and not transport.senders[1].done:
            cc = transport.senders[1].extra["cc"]
            assert cc.alpha > 0.001

    def test_marked_contention_slower_than_unmarked(self):
        def run(ecn):
            net = small_net("dcqcn")
            net.set_ecn_all(ecn)
            flows = [Flow(1, "h0", "h3", 200_000),
                     Flow(2, "h1", "h3", 200_000)]
            net.start_flows(flows)
            net.advance(3.0)
            assert all(f.done for f in flows)
            return max(f.fct for f in flows)

        fct_marked = run(ECNConfig(1, 2, 1.0))
        fct_free = run(ECNConfig(10_000_000, 20_000_000, 0.01))
        assert fct_marked > fct_free


class TestDCTCP:
    def test_window_grows_without_marks(self):
        net = small_net("dctcp")
        net.set_ecn_all(ECNConfig(10_000_000, 20_000_000, 0.01))
        f = Flow(1, "h0", "h3", 500_000)
        net.start_flow(f)
        net.advance(0.005)
        t = net.topology.host(0).transport
        if 1 in t.senders and not t.senders[1].done:
            assert t.current_cwnd(1) > t.params.init_cwnd_pkts * t.mtu * 0.9

    def test_window_shrinks_under_marking(self):
        net = small_net("dctcp")
        net.set_ecn_all(ECNConfig(1, 2, 1.0))
        flows = [Flow(1, "h0", "h3", 5_000_000),
                 Flow(2, "h1", "h3", 5_000_000)]
        net.start_flows(flows)
        net.advance(0.05)
        t = net.topology.host(0).transport
        cwnd = t.current_cwnd(1)
        assert cwnd is not None
        assert cwnd < t.params.init_cwnd_pkts * t.mtu * 5

    def test_alpha_tracks_marking(self):
        net = small_net("dctcp")
        net.set_ecn_all(ECNConfig(1, 2, 1.0))
        flows = [Flow(1, "h0", "h3", 2_000_000),
                 Flow(2, "h1", "h3", 2_000_000)]
        net.start_flows(flows)
        net.advance(0.05)
        cc = net.topology.host(0).transport.senders[1].extra["cc"]
        assert cc.alpha > 0.1


class TestHPCC:
    def test_int_enabled_automatically(self):
        net = small_net("hpcc")
        assert net.config.int_enabled

    def test_window_reacts_to_congestion(self):
        net = small_net("hpcc")
        flows = [Flow(i, f"h{i}", "h3", 2_000_000) for i in range(2)]
        net.start_flows(flows)
        net.advance(0.02)
        t = net.topology.host(0).transport
        w = t.current_window(0)
        if w is not None:
            bdp = 1e8 / 8 * t.params.base_rtt
            assert w <= bdp * 2 + t.mtu


class TestReliability:
    def test_flow_completes_despite_tiny_buffers(self):
        """Forced drops exercise the go-back-N retransmission path."""
        net = small_net("dcqcn", switch_buffer_bytes=4_000)
        flows = [Flow(i, f"h{i % 2}", "h3", 100_000) for i in range(4)]
        net.start_flows(flows)
        net.advance(5.0)
        assert net.total_drops() > 0, "scenario should actually drop"
        assert all(f.done for f in flows)

    def test_retransmission_counter_increments(self):
        net = small_net("dcqcn", switch_buffer_bytes=3_000)
        flows = [Flow(i, f"h{i % 2}", "h3", 80_000) for i in range(4)]
        net.start_flows(flows)
        net.advance(5.0)
        retrans = sum(s.retransmissions
                      for h in net.topology.hosts
                      for s in h.transport.senders.values())
        assert retrans > 0
